//! The owned [`Packet`] type and its builder.
//!
//! A `Packet` is stored in parsed form (Ethernet header, optional IPv4
//! header, optional L4 header) together with its on-the-wire frame length.
//! It can be serialised to and parsed from raw bytes, which is what the PCAP
//! reader/writer and the traffic-generator model consume.

use crate::eth::{EthHeader, EtherType, MacAddr};
use crate::field::PacketField;
use crate::flow::FlowKey;
use crate::ip::{IpProto, Ipv4Addr, Ipv4Header};
use crate::l4::{TcpHeader, UdpHeader};

/// Minimum Ethernet frame size (without FCS) used for all generated packets,
/// matching the paper's small-packet workloads.
pub const MIN_FRAME_LEN: u16 = 64;

/// The L4 header of a packet, if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum L4Header {
    /// A UDP header.
    Udp(UdpHeader),
    /// A TCP header.
    Tcp(TcpHeader),
    /// No parsed L4 header (non-TCP/UDP protocol or truncated frame).
    None,
}

/// Errors returned by [`Packet::parse`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// The frame is shorter than an Ethernet header.
    TruncatedEthernet,
    /// The frame claims IPv4 but the IP header is missing, truncated, or
    /// carries options.
    BadIpv4Header,
    /// The IP header announces TCP/UDP but the L4 header is truncated.
    TruncatedL4,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ParseError::TruncatedEthernet => "frame shorter than an Ethernet header",
            ParseError::BadIpv4Header => "missing, truncated, or option-bearing IPv4 header",
            ParseError::TruncatedL4 => "truncated TCP/UDP header",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ParseError {}

/// A parsed network packet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Packet {
    /// Ethernet header.
    pub eth: EthHeader,
    /// IPv4 header, if the frame carries IPv4.
    pub ipv4: Option<Ipv4Header>,
    /// L4 header, if the frame carries TCP or UDP.
    pub l4: L4Header,
    /// On-the-wire frame length in bytes (header + payload, no FCS).
    pub frame_len: u16,
}

impl Packet {
    /// Returns the IPv4 header, if present.
    pub fn ipv4(&self) -> Option<&Ipv4Header> {
        self.ipv4.as_ref()
    }

    /// Source L4 port, if the packet has a TCP or UDP header.
    pub fn src_port(&self) -> Option<u16> {
        match self.l4 {
            L4Header::Udp(u) => Some(u.src_port),
            L4Header::Tcp(t) => Some(t.src_port),
            L4Header::None => None,
        }
    }

    /// Destination L4 port, if the packet has a TCP or UDP header.
    pub fn dst_port(&self) -> Option<u16> {
        match self.l4 {
            L4Header::Udp(u) => Some(u.dst_port),
            L4Header::Tcp(t) => Some(t.dst_port),
            L4Header::None => None,
        }
    }

    /// The packet's flow key, if it is a tracked (TCP/UDP over IPv4) packet.
    pub fn flow(&self) -> Option<FlowKey> {
        FlowKey::of_packet(self)
    }

    /// Reads a header field as an integer; missing layers read as zero.
    pub fn field(&self, f: PacketField) -> u64 {
        match f {
            PacketField::EthDst => self.eth.dst.to_u64(),
            PacketField::EthSrc => self.eth.src.to_u64(),
            PacketField::EtherType => u64::from(self.eth.ethertype.to_u16()),
            PacketField::IpTotalLen => self.ipv4.map_or(0, |h| u64::from(h.total_len)),
            PacketField::IpTtl => self.ipv4.map_or(0, |h| u64::from(h.ttl)),
            PacketField::IpProto => self.ipv4.map_or(0, |h| u64::from(h.proto.to_u8())),
            PacketField::SrcIp => self.ipv4.map_or(0, |h| u64::from(h.src.to_u32())),
            PacketField::DstIp => self.ipv4.map_or(0, |h| u64::from(h.dst.to_u32())),
            PacketField::SrcPort => u64::from(self.src_port().unwrap_or(0)),
            PacketField::DstPort => u64::from(self.dst_port().unwrap_or(0)),
            PacketField::TcpFlags => match self.l4 {
                L4Header::Tcp(t) => u64::from(t.flags),
                _ => 0,
            },
            PacketField::FrameLen => u64::from(self.frame_len),
        }
    }

    /// Serialises the packet to wire bytes, padding the payload with zeros up
    /// to `frame_len`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = vec![0u8; usize::from(self.frame_len.max(MIN_FRAME_LEN))];
        self.eth.write(&mut buf);
        let mut off = EthHeader::LEN;
        if let Some(ip) = self.ipv4 {
            ip.write(&mut buf[off..]);
            off += Ipv4Header::LEN;
            match self.l4 {
                L4Header::Udp(u) => u.write(&mut buf[off..]),
                L4Header::Tcp(t) => t.write(&mut buf[off..]),
                L4Header::None => {}
            }
        }
        buf
    }

    /// Parses a packet from wire bytes.
    pub fn parse(bytes: &[u8]) -> Result<Packet, ParseError> {
        let eth = EthHeader::parse(bytes).ok_or(ParseError::TruncatedEthernet)?;
        let mut ipv4 = None;
        let mut l4 = L4Header::None;
        if eth.ethertype == EtherType::Ipv4 {
            let ip =
                Ipv4Header::parse(&bytes[EthHeader::LEN..]).ok_or(ParseError::BadIpv4Header)?;
            let l4_off = EthHeader::LEN + Ipv4Header::LEN;
            l4 = match ip.proto {
                IpProto::Udp => L4Header::Udp(
                    UdpHeader::parse(&bytes[l4_off..]).ok_or(ParseError::TruncatedL4)?,
                ),
                IpProto::Tcp => L4Header::Tcp(
                    TcpHeader::parse(&bytes[l4_off..]).ok_or(ParseError::TruncatedL4)?,
                ),
                _ => L4Header::None,
            };
            ipv4 = Some(ip);
        }
        Ok(Packet {
            eth,
            ipv4,
            l4,
            frame_len: bytes.len().min(usize::from(u16::MAX)) as u16,
        })
    }
}

/// Builds valid minimum-size packets with sensible defaults (64-byte UDP
/// frames between placeholder MACs), letting callers override only the fields
/// an experiment cares about.
#[derive(Clone, Debug)]
pub struct PacketBuilder {
    eth_src: MacAddr,
    eth_dst: MacAddr,
    ethertype: EtherType,
    src_ip: Ipv4Addr,
    dst_ip: Ipv4Addr,
    proto: IpProto,
    src_port: u16,
    dst_port: u16,
    ttl: u8,
    tcp_flags: u8,
    frame_len: u16,
}

impl Default for PacketBuilder {
    fn default() -> Self {
        PacketBuilder {
            eth_src: MacAddr::new(0x02, 0, 0, 0, 0, 0x01),
            eth_dst: MacAddr::new(0x02, 0, 0, 0, 0, 0x02),
            ethertype: EtherType::Ipv4,
            src_ip: Ipv4Addr::new(10, 0, 0, 1),
            dst_ip: Ipv4Addr::new(10, 0, 0, 2),
            proto: IpProto::Udp,
            src_port: 10000,
            dst_port: 80,
            ttl: 64,
            tcp_flags: TcpHeader::SYN,
            frame_len: MIN_FRAME_LEN,
        }
    }
}

impl PacketBuilder {
    /// Starts a builder with the default 64-byte UDP frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a builder pre-populated from a flow key.
    pub fn udp_flow(key: FlowKey) -> Self {
        PacketBuilder::new()
            .proto(key.proto)
            .src_ip(key.src_ip)
            .dst_ip(key.dst_ip)
            .src_port(key.src_port)
            .dst_port(key.dst_port)
    }

    /// Sets the source MAC address.
    pub fn eth_src(mut self, m: MacAddr) -> Self {
        self.eth_src = m;
        self
    }

    /// Sets the destination MAC address.
    pub fn eth_dst(mut self, m: MacAddr) -> Self {
        self.eth_dst = m;
        self
    }

    /// Sets the EtherType (non-IPv4 types produce an L2-only frame).
    pub fn ethertype(mut self, t: EtherType) -> Self {
        self.ethertype = t;
        self
    }

    /// Sets the IP protocol.
    pub fn proto(mut self, p: IpProto) -> Self {
        self.proto = p;
        self
    }

    /// Sets the source IPv4 address.
    pub fn src_ip(mut self, a: Ipv4Addr) -> Self {
        self.src_ip = a;
        self
    }

    /// Sets the destination IPv4 address.
    pub fn dst_ip(mut self, a: Ipv4Addr) -> Self {
        self.dst_ip = a;
        self
    }

    /// Sets the L4 source port.
    pub fn src_port(mut self, p: u16) -> Self {
        self.src_port = p;
        self
    }

    /// Sets the L4 destination port.
    pub fn dst_port(mut self, p: u16) -> Self {
        self.dst_port = p;
        self
    }

    /// Sets the IP TTL.
    pub fn ttl(mut self, t: u8) -> Self {
        self.ttl = t;
        self
    }

    /// Sets the TCP flag byte (only meaningful for TCP packets).
    pub fn tcp_flags(mut self, f: u8) -> Self {
        self.tcp_flags = f;
        self
    }

    /// Sets the frame length (clamped to at least the headers present).
    pub fn frame_len(mut self, len: u16) -> Self {
        self.frame_len = len.max(MIN_FRAME_LEN);
        self
    }

    /// Assembles the packet.
    pub fn build(self) -> Packet {
        let eth = EthHeader {
            dst: self.eth_dst,
            src: self.eth_src,
            ethertype: self.ethertype,
        };
        if self.ethertype != EtherType::Ipv4 {
            return Packet {
                eth,
                ipv4: None,
                l4: L4Header::None,
                frame_len: self.frame_len,
            };
        }
        let ip_payload = match self.proto {
            IpProto::Udp => UdpHeader::LEN,
            IpProto::Tcp => TcpHeader::LEN,
            _ => 0,
        };
        let total_len =
            (usize::from(self.frame_len) - EthHeader::LEN).max(Ipv4Header::LEN + ip_payload) as u16;
        let ipv4 = Ipv4Header {
            dscp_ecn: 0,
            total_len,
            identification: 0,
            flags_frag: 0x4000, // don't fragment
            ttl: self.ttl,
            proto: self.proto,
            src: self.src_ip,
            dst: self.dst_ip,
        };
        let l4 = match self.proto {
            IpProto::Udp => L4Header::Udp(UdpHeader {
                src_port: self.src_port,
                dst_port: self.dst_port,
                len: total_len - Ipv4Header::LEN as u16,
                checksum: 0,
            }),
            IpProto::Tcp => L4Header::Tcp(TcpHeader {
                src_port: self.src_port,
                dst_port: self.dst_port,
                seq: 0,
                ack: 0,
                flags: self.tcp_flags,
                window: 65535,
                checksum: 0,
                urgent: 0,
            }),
            _ => L4Header::None,
        };
        Packet {
            eth,
            ipv4: Some(ipv4),
            l4,
            frame_len: self.frame_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid_udp() {
        let p = PacketBuilder::new().build();
        assert_eq!(p.frame_len, MIN_FRAME_LEN);
        assert_eq!(p.field(PacketField::IpProto), 17);
        assert_eq!(p.field(PacketField::EtherType), 0x0800);
        assert!(p.flow().is_some());
    }

    #[test]
    fn wire_roundtrip_udp() {
        let p = PacketBuilder::new()
            .src_ip(Ipv4Addr::new(1, 2, 3, 4))
            .dst_ip(Ipv4Addr::new(9, 8, 7, 6))
            .src_port(123)
            .dst_port(4567)
            .build();
        let bytes = p.to_bytes();
        assert_eq!(bytes.len(), usize::from(MIN_FRAME_LEN));
        let q = Packet::parse(&bytes).unwrap();
        assert_eq!(q.field(PacketField::SrcIp), p.field(PacketField::SrcIp));
        assert_eq!(q.field(PacketField::DstIp), p.field(PacketField::DstIp));
        assert_eq!(q.field(PacketField::SrcPort), 123);
        assert_eq!(q.field(PacketField::DstPort), 4567);
        assert!(Ipv4Header::checksum_ok(&bytes[EthHeader::LEN..]));
    }

    #[test]
    fn wire_roundtrip_tcp() {
        let p = PacketBuilder::new()
            .proto(IpProto::Tcp)
            .tcp_flags(TcpHeader::SYN | TcpHeader::ACK)
            .build();
        let q = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(
            q.field(PacketField::TcpFlags),
            u64::from(TcpHeader::SYN | TcpHeader::ACK)
        );
        assert_eq!(q.field(PacketField::IpProto), 6);
    }

    #[test]
    fn non_ip_frame_has_no_flow() {
        let p = PacketBuilder::new().ethertype(EtherType::Arp).build();
        assert!(p.ipv4.is_none());
        assert_eq!(p.flow(), None);
        assert_eq!(p.field(PacketField::SrcIp), 0);
        let q = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(q.eth.ethertype, EtherType::Arp);
    }

    #[test]
    fn icmp_packet_parses_without_l4() {
        let p = PacketBuilder::new().proto(IpProto::Icmp).build();
        let q = Packet::parse(&p.to_bytes()).unwrap();
        assert_eq!(q.l4, L4Header::None);
        assert_eq!(q.field(PacketField::IpProto), 1);
    }

    #[test]
    fn parse_error_display() {
        assert!(Packet::parse(&[0u8; 4]).is_err());
        let e = Packet::parse(&[0u8; 4]).unwrap_err();
        assert!(e.to_string().contains("Ethernet"));
    }

    #[test]
    fn field_reads_match_builder() {
        let p = PacketBuilder::new()
            .src_ip(Ipv4Addr::new(172, 16, 5, 5))
            .ttl(13)
            .frame_len(128)
            .build();
        assert_eq!(p.field(PacketField::IpTtl), 13);
        assert_eq!(p.field(PacketField::FrameLen), 128);
        assert_eq!(
            p.field(PacketField::SrcIp),
            u64::from(Ipv4Addr::new(172, 16, 5, 5).to_u32())
        );
    }
}

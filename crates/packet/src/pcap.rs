//! Minimal libpcap (classic `.pcap`, not pcapng) reader and writer.
//!
//! CASTAN's output is a PCAP file that the traffic generator replays; this
//! module writes byte-for-byte valid classic pcap files (magic `0xa1b2c3d4`,
//! link type Ethernet) and reads them back, both from files and in-memory
//! buffers.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::packet::Packet;

/// Classic pcap magic number (microsecond timestamps, native byte order).
const MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Errors produced by the pcap reader.
#[derive(Debug)]
pub enum PcapError {
    /// An underlying I/O error.
    Io(io::Error),
    /// The global header is missing or carries an unsupported magic/linktype.
    BadHeader(&'static str),
    /// A record header or its payload is truncated.
    Truncated,
}

impl std::fmt::Display for PcapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PcapError::Io(e) => write!(f, "pcap I/O error: {e}"),
            PcapError::BadHeader(why) => write!(f, "bad pcap header: {why}"),
            PcapError::Truncated => f.write_str("truncated pcap record"),
        }
    }
}

impl std::error::Error for PcapError {}

impl From<io::Error> for PcapError {
    fn from(e: io::Error) -> Self {
        PcapError::Io(e)
    }
}

/// A captured record: raw frame bytes plus a microsecond timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PcapRecord {
    /// Seconds part of the timestamp.
    pub ts_sec: u32,
    /// Microseconds part of the timestamp.
    pub ts_usec: u32,
    /// Raw frame bytes.
    pub data: Vec<u8>,
}

/// Serialises frames into a classic pcap byte stream.
pub fn write_pcap_bytes<'a>(frames: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.extend_from_slice(&2u16.to_le_bytes()); // version major
    out.extend_from_slice(&4u16.to_le_bytes()); // version minor
    out.extend_from_slice(&0u32.to_le_bytes()); // thiszone
    out.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
    out.extend_from_slice(&65535u32.to_le_bytes()); // snaplen
    out.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
    for (i, frame) in frames.into_iter().enumerate() {
        // Synthetic timestamps, 1 µs apart: replay tools only need ordering.
        let ts_sec = (i / 1_000_000) as u32;
        let ts_usec = (i % 1_000_000) as u32;
        out.extend_from_slice(&ts_sec.to_le_bytes());
        out.extend_from_slice(&ts_usec.to_le_bytes());
        out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        out.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        out.extend_from_slice(frame);
    }
    out
}

/// Writes a pcap file containing the given packets.
pub fn write_pcap_file(path: &Path, packets: &[Packet]) -> Result<(), PcapError> {
    let frames: Vec<Vec<u8>> = packets.iter().map(Packet::to_bytes).collect();
    let bytes = write_pcap_bytes(frames.iter().map(Vec::as_slice));
    let mut f = File::create(path)?;
    f.write_all(&bytes)?;
    Ok(())
}

/// Parses a classic pcap byte stream into records.
pub fn read_pcap_bytes(bytes: &[u8]) -> Result<Vec<PcapRecord>, PcapError> {
    if bytes.len() < 24 {
        return Err(PcapError::BadHeader("shorter than the global header"));
    }
    let magic = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if magic != MAGIC {
        return Err(PcapError::BadHeader(
            "unsupported magic (expected 0xa1b2c3d4 LE)",
        ));
    }
    let linktype = u32::from_le_bytes([bytes[20], bytes[21], bytes[22], bytes[23]]);
    if linktype != LINKTYPE_ETHERNET {
        return Err(PcapError::BadHeader(
            "unsupported link type (expected Ethernet)",
        ));
    }
    let mut records = Vec::new();
    let mut off = 24;
    while off < bytes.len() {
        if off + 16 > bytes.len() {
            return Err(PcapError::Truncated);
        }
        let rd =
            |i: usize| u32::from_le_bytes([bytes[i], bytes[i + 1], bytes[i + 2], bytes[i + 3]]);
        let ts_sec = rd(off);
        let ts_usec = rd(off + 4);
        let incl_len = rd(off + 8) as usize;
        off += 16;
        if off + incl_len > bytes.len() {
            return Err(PcapError::Truncated);
        }
        records.push(PcapRecord {
            ts_sec,
            ts_usec,
            data: bytes[off..off + incl_len].to_vec(),
        });
        off += incl_len;
    }
    Ok(records)
}

/// Reads a pcap file and parses each record into a [`Packet`], skipping
/// records that do not parse (mirroring how the DPDK replay path drops
/// malformed frames).
pub fn read_pcap_file(path: &Path) -> Result<Vec<Packet>, PcapError> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let records = read_pcap_bytes(&bytes)?;
    Ok(records
        .iter()
        .filter_map(|r| Packet::parse(&r.data).ok())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::Ipv4Addr;
    use crate::packet::PacketBuilder;

    fn sample_packets(n: usize) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                PacketBuilder::new()
                    .src_ip(Ipv4Addr(0x0a00_0000 + i as u32))
                    .src_port(1000 + i as u16)
                    .build()
            })
            .collect()
    }

    #[test]
    fn roundtrip_in_memory() {
        let pkts = sample_packets(5);
        let frames: Vec<Vec<u8>> = pkts.iter().map(Packet::to_bytes).collect();
        let bytes = write_pcap_bytes(frames.iter().map(Vec::as_slice));
        let records = read_pcap_bytes(&bytes).unwrap();
        assert_eq!(records.len(), 5);
        for (rec, pkt) in records.iter().zip(&pkts) {
            let parsed = Packet::parse(&rec.data).unwrap();
            assert_eq!(
                parsed.field(crate::PacketField::SrcIp),
                pkt.field(crate::PacketField::SrcIp)
            );
        }
    }

    #[test]
    fn roundtrip_file() {
        let dir = std::env::temp_dir().join("castan-pcap-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pcap");
        let pkts = sample_packets(17);
        write_pcap_file(&path, &pkts).unwrap();
        let back = read_pcap_file(&path).unwrap();
        assert_eq!(back.len(), 17);
        assert_eq!(back[3].field(crate::PacketField::SrcPort), 1003);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_pcap_bytes(&[0u8; 10]),
            Err(PcapError::BadHeader(_))
        ));
        let mut bytes = write_pcap_bytes(std::iter::empty());
        bytes[0] ^= 0xff;
        assert!(matches!(
            read_pcap_bytes(&bytes),
            Err(PcapError::BadHeader(_))
        ));
    }

    #[test]
    fn detects_truncation() {
        let pkts = sample_packets(2);
        let frames: Vec<Vec<u8>> = pkts.iter().map(Packet::to_bytes).collect();
        let bytes = write_pcap_bytes(frames.iter().map(Vec::as_slice));
        let truncated = &bytes[..bytes.len() - 10];
        assert!(matches!(
            read_pcap_bytes(truncated),
            Err(PcapError::Truncated)
        ));
    }

    #[test]
    fn timestamps_are_monotonic() {
        let pkts = sample_packets(3);
        let frames: Vec<Vec<u8>> = pkts.iter().map(Packet::to_bytes).collect();
        let recs = read_pcap_bytes(&write_pcap_bytes(frames.iter().map(Vec::as_slice))).unwrap();
        for w in recs.windows(2) {
            let a = (u64::from(w[0].ts_sec), w[0].ts_usec);
            let b = (u64::from(w[1].ts_sec), w[1].ts_usec);
            assert!(a < b);
        }
    }
}

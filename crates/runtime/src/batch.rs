//! Per-queue batching.
//!
//! DPDK-style runtimes never hand packets to a worker one at a time: the
//! dispatcher buffers per-queue bursts and the worker pays the dispatch
//! overhead (ring doorbell, prefetch, descriptor refill) once per burst.
//! [`Batcher`] reproduces that buffering deterministically: items are
//! pushed in arrival order, a queue releases a full batch the moment it
//! reaches `batch_size`, and [`Batcher::flush`] drains the partial tails
//! in queue order at end of input.

/// Per-queue batch buffering.
#[derive(Clone, Debug)]
pub struct Batcher<T> {
    queues: Vec<Vec<T>>,
    batch_size: usize,
}

impl<T> Batcher<T> {
    /// A batcher for `n_queues` queues releasing batches of `batch_size`.
    pub fn new(n_queues: usize, batch_size: usize) -> Self {
        assert!(n_queues > 0, "need at least one queue");
        assert!(batch_size > 0, "batch size must be positive");
        Batcher {
            queues: (0..n_queues)
                .map(|_| Vec::with_capacity(batch_size))
                .collect(),
            batch_size,
        }
    }

    /// The configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Buffers `item` on `queue`; returns the queue's batch when this push
    /// fills it.
    pub fn push(&mut self, queue: usize, item: T) -> Option<Vec<T>> {
        let q = &mut self.queues[queue];
        q.push(item);
        (q.len() >= self.batch_size)
            .then(|| std::mem::replace(q, Vec::with_capacity(self.batch_size)))
    }

    /// Drains every non-empty partial batch, in queue order. The replacement
    /// buffers keep the `batch_size` reservation — `std::mem::take` would
    /// leave zero-capacity Vecs behind, making every post-flush batch regrow
    /// from empty (the sharded runtime flushes at every rebalance epoch).
    pub fn flush(&mut self) -> Vec<(usize, Vec<T>)> {
        let batch_size = self.batch_size;
        self.queues
            .iter_mut()
            .enumerate()
            .filter(|(_, q)| !q.is_empty())
            .map(|(i, q)| (i, std::mem::replace(q, Vec::with_capacity(batch_size))))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn releases_full_batches_in_arrival_order() {
        let mut b = Batcher::new(2, 3);
        assert!(b.push(0, 1).is_none());
        assert!(b.push(1, 10).is_none());
        assert!(b.push(0, 2).is_none());
        let batch = b.push(0, 3).expect("queue 0 is full");
        assert_eq!(batch, vec![1, 2, 3]);
        assert!(b.push(0, 4).is_none(), "queue 0 restarted empty");
    }

    #[test]
    fn flush_drains_partials_in_queue_order() {
        let mut b = Batcher::new(3, 4);
        b.push(2, 'c');
        b.push(0, 'a');
        b.push(2, 'd');
        let rest = b.flush();
        assert_eq!(rest, vec![(0, vec!['a']), (2, vec!['c', 'd'])]);
        assert!(b.flush().is_empty());
    }

    #[test]
    fn flush_preserves_the_batch_size_reservation() {
        // Regression: flush used std::mem::take, leaving zero-capacity
        // queues, so every post-flush batch reallocated from empty.
        let mut b = Batcher::new(4, 32);
        for q in 0..4 {
            b.push(q, q);
        }
        let drained = b.flush();
        assert_eq!(drained.len(), 4);
        for q in &b.queues {
            assert!(
                q.capacity() >= b.batch_size,
                "flush must preserve the batch_size reservation, got {}",
                q.capacity()
            );
        }
        // And batches released by push keep doing so too.
        for _ in 0..32 {
            b.push(1, 9);
        }
        assert!(b.queues[1].capacity() >= b.batch_size);
    }

    #[test]
    fn batch_size_one_passes_items_straight_through() {
        let mut b = Batcher::new(1, 1);
        assert_eq!(b.push(0, 42), Some(vec![42]));
        assert!(b.flush().is_empty());
    }
}

//! RSS dispatch: flow hash → indirection table → receive queue, and its
//! adversarial inverse (steering a flow onto a chosen queue).

use castan_packet::{FlowKey, Ipv4Addr, L4Header, Packet};

use crate::toeplitz::{rss_hash, RSS_KEY_LEN, RSS_MS_DEFAULT_KEY};

/// RSS configuration of the simulated NIC.
#[derive(Clone, Copy, Debug)]
pub struct RssConfig {
    /// Number of receive queues (one per core).
    pub n_queues: usize,
    /// The Toeplitz hash key.
    pub key: [u8; RSS_KEY_LEN],
    /// Indirection-table size (must be a power of two; real NICs use 128
    /// or 512 entries).
    pub table_size: usize,
}

impl RssConfig {
    /// The default NIC setup for `n_queues` cores: Microsoft's default key
    /// and a 128-entry indirection table filled round-robin.
    pub fn for_queues(n_queues: usize) -> Self {
        RssConfig {
            n_queues,
            key: RSS_MS_DEFAULT_KEY,
            table_size: 128,
        }
    }
}

/// The dispatcher: maps flows (and packets) to receive queues.
#[derive(Clone, Debug)]
pub struct RssDispatcher {
    config: RssConfig,
    /// `indirection[hash % table_size]` is the queue.
    indirection: Vec<u32>,
}

impl RssDispatcher {
    /// Builds a dispatcher with a round-robin indirection table.
    pub fn new(config: RssConfig) -> Self {
        assert!(config.n_queues > 0, "need at least one queue");
        assert!(
            config.table_size.is_power_of_two(),
            "indirection table size must be a power of two"
        );
        let indirection = (0..config.table_size)
            .map(|i| (i % config.n_queues) as u32)
            .collect();
        RssDispatcher {
            config,
            indirection,
        }
    }

    /// The default dispatcher for `n_queues` cores.
    pub fn for_queues(n_queues: usize) -> Self {
        Self::new(RssConfig::for_queues(n_queues))
    }

    /// Number of receive queues.
    pub fn n_queues(&self) -> usize {
        self.config.n_queues
    }

    /// This dispatcher's configuration.
    pub fn config(&self) -> &RssConfig {
        &self.config
    }

    /// RSS hash of a flow.
    pub fn hash_of(&self, flow: &FlowKey) -> u32 {
        rss_hash(&self.config.key, flow)
    }

    /// The queue a flow is dispatched to.
    pub fn queue_of_flow(&self, flow: &FlowKey) -> usize {
        let idx = (self.hash_of(flow) as usize) & (self.config.table_size - 1);
        self.indirection[idx] as usize
    }

    /// The queue a packet is dispatched to. Packets without a tracked
    /// TCP/UDP flow (ARP, ICMP, …) carry no RSS hash and fall back to
    /// queue 0, as real NICs do.
    pub fn queue_of_packet(&self, packet: &Packet) -> usize {
        match packet.flow() {
            Some(flow) => self.queue_of_flow(&flow),
            None => 0,
        }
    }

    /// Searches the free 5-tuple dimensions for a variant of `flow` that
    /// lands on `target` *and* is accepted by `distinct`, trying source
    /// ports first (scanning outward from the current port) and then
    /// source-address low bits. Destination address, destination port and
    /// protocol are never touched — those are what the traffic is *for*.
    ///
    /// This is the attacker primitive behind queue-skew workloads: with a
    /// known key, on average `n_queues` candidates suffice, so the search
    /// is cheap. Returns `None` only if every candidate is rejected.
    pub fn steer_flow(
        &self,
        flow: &FlowKey,
        target: usize,
        mut distinct: impl FnMut(&FlowKey) -> bool,
    ) -> Option<FlowKey> {
        assert!(target < self.config.n_queues, "target queue out of range");
        let mut check = |candidate: FlowKey| -> Option<FlowKey> {
            (self.queue_of_flow(&candidate) == target && distinct(&candidate)).then_some(candidate)
        };
        if let Some(found) = check(*flow) {
            return Some(found);
        }
        // Source-port scan: wrap around the full 16-bit space, skipping
        // port 0 (not a valid source port on the wire).
        for delta in 1..u16::MAX {
            let mut candidate = *flow;
            candidate.src_port = flow.src_port.wrapping_add(delta).max(1);
            if let Some(found) = check(candidate) {
                return Some(found);
            }
        }
        // Source-address low-byte scan (e.g. a /24 of attack sources), with
        // the port scan nested per address.
        for ip_delta in 1..=u8::MAX {
            let mut octets = flow.src_ip.octets();
            octets[3] = octets[3].wrapping_add(ip_delta);
            for delta in 0..256u16 {
                let mut candidate = *flow;
                candidate.src_ip = Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]);
                candidate.src_port = flow.src_port.wrapping_add(delta).max(1);
                if let Some(found) = check(candidate) {
                    return Some(found);
                }
            }
        }
        None
    }
}

/// Rewrites `packet` so that its flow becomes `flow` (source endpoint
/// only — destination and protocol are asserted unchanged, matching what
/// [`RssDispatcher::steer_flow`] produces). Non-flow packets are returned
/// unchanged.
pub fn steer_packet(packet: &Packet, flow: &FlowKey) -> Packet {
    let mut out = *packet;
    let Some(current) = packet.flow() else {
        return out;
    };
    assert_eq!(current.dst_ip, flow.dst_ip, "steering must not retarget");
    assert_eq!(
        current.dst_port, flow.dst_port,
        "steering must not retarget"
    );
    assert_eq!(current.proto, flow.proto, "steering must not retarget");
    if let Some(ip) = out.ipv4.as_mut() {
        ip.src = flow.src_ip;
    }
    match &mut out.l4 {
        L4Header::Udp(u) => u.src_port = flow.src_port,
        L4Header::Tcp(t) => t.src_port = flow.src_port,
        L4Header::None => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_packet::PacketBuilder;

    fn flow(i: u64) -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
            1024 + (i % 50_000) as u16,
            Ipv4Addr::new(93, 184, 216, 34),
            80,
        )
    }

    #[test]
    fn queues_cover_all_cores_roughly_evenly() {
        let d = RssDispatcher::for_queues(4);
        let mut counts = [0usize; 4];
        for i in 0..4096 {
            counts[d.queue_of_flow(&flow(i))] += 1;
        }
        for (q, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1400).contains(&c),
                "queue {q} got {c} of 4096 flows — dispatch is badly skewed"
            );
        }
    }

    #[test]
    fn one_queue_sends_everything_to_core_zero() {
        let d = RssDispatcher::for_queues(1);
        for i in 0..256 {
            assert_eq!(d.queue_of_flow(&flow(i)), 0);
        }
    }

    #[test]
    fn packets_follow_their_flow() {
        let d = RssDispatcher::for_queues(8);
        for i in 0..256 {
            let f = flow(i);
            let p = PacketBuilder::udp_flow(f).build();
            assert_eq!(d.queue_of_packet(&p), d.queue_of_flow(&f));
        }
        // Non-flow packets land on queue 0.
        let arp = PacketBuilder::new()
            .ethertype(castan_packet::EtherType::Arp)
            .build();
        assert_eq!(d.queue_of_packet(&arp), 0);
    }

    #[test]
    fn steering_lands_every_flow_on_the_victim_queue() {
        let d = RssDispatcher::for_queues(4);
        for target in 0..4 {
            for i in 0..128 {
                let f = flow(i);
                let steered = d.steer_flow(&f, target, |_| true).expect("steerable");
                assert_eq!(d.queue_of_flow(&steered), target);
                assert_eq!(steered.dst_ip, f.dst_ip);
                assert_eq!(steered.dst_port, f.dst_port);
                assert_eq!(steered.proto, f.proto);
            }
        }
    }

    #[test]
    fn steering_respects_the_distinctness_filter() {
        let d = RssDispatcher::for_queues(2);
        let f = flow(7);
        let first = d.steer_flow(&f, 0, |_| true).unwrap();
        let second = d.steer_flow(&f, 0, |c| *c != first).unwrap();
        assert_ne!(first, second);
        assert_eq!(d.queue_of_flow(&second), 0);
    }

    #[test]
    fn steer_packet_rewrites_only_the_source_endpoint() {
        let f = flow(3);
        let p = PacketBuilder::udp_flow(f).ttl(17).build();
        let d = RssDispatcher::for_queues(4);
        let steered_flow = d.steer_flow(&f, 2, |_| true).unwrap();
        let q = steer_packet(&p, &steered_flow);
        assert_eq!(q.flow(), Some(steered_flow));
        assert_eq!(q.ipv4.unwrap().ttl, 17, "unrelated fields survive");
        assert_eq!(
            q.field(castan_packet::PacketField::DstIp),
            p.field(castan_packet::PacketField::DstIp)
        );
    }
}

//! RSS dispatch: flow hash → indirection table → receive queue, and its
//! adversarial inverse (steering a flow onto a chosen queue).

use castan_packet::{FlowKey, Ipv4Addr, L4Header, Packet};

use crate::toeplitz::{ToeplitzTable, RSS_KEY_LEN, RSS_MS_DEFAULT_KEY};

/// RSS configuration of the simulated NIC.
#[derive(Clone, Copy, Debug)]
pub struct RssConfig {
    /// Number of receive queues (one per core).
    pub n_queues: usize,
    /// The Toeplitz hash key.
    pub key: [u8; RSS_KEY_LEN],
    /// Indirection-table size (must be a power of two; real NICs use 128
    /// or 512 entries).
    pub table_size: usize,
}

impl RssConfig {
    /// The default NIC setup for `n_queues` cores: Microsoft's default key
    /// and a 128-entry indirection table filled round-robin. Deployments
    /// with more than 128 queues get the large 512-entry table real NICs
    /// offer (X710/E810 style), so no queue is ever left out of the table.
    ///
    /// Whenever `table_size % n_queues != 0` a round-robin fill must give
    /// `table_size % n_queues` queues one extra entry each (e.g. 128
    /// entries over 3 queues is one queue at 42 and two at 43) — a ±1
    /// imbalance no static fill can remove. Which queues carry the extra
    /// entry is decided by a deterministic offset seeded from the config
    /// (key and table geometry, see [`RssDispatcher::new`]), so the
    /// under-provisioned queue is not always the last one across
    /// deployments.
    pub fn for_queues(n_queues: usize) -> Self {
        let table_size = if n_queues > 128 {
            n_queues.next_power_of_two().max(512)
        } else {
            128
        };
        RssConfig {
            n_queues,
            key: RSS_MS_DEFAULT_KEY,
            table_size,
        }
    }
}

/// The dispatcher: maps flows (and packets) to receive queues.
#[derive(Clone, Debug)]
pub struct RssDispatcher {
    config: RssConfig,
    /// `indirection[hash % table_size]` is the queue.
    indirection: Vec<u32>,
    /// Precomputed per-byte Toeplitz tables for the configured key (rebuilt
    /// on key rotation): hashing costs 12 lookups instead of 96 bit tests.
    hasher: ToeplitzTable,
}

/// The rotation applied to the round-robin boot fill when the table does
/// not divide evenly over the queues. `0` for divisible configs (the fill
/// stays the exact `i % n_queues` the rest of the workspace pins against);
/// otherwise a deterministic offset seeded from the key and the table
/// geometry, so the `table_size % n_queues` queues that carry one extra
/// entry vary per configuration instead of always being the first ones.
fn boot_fill_offset(config: &RssConfig) -> usize {
    if config.table_size.is_multiple_of(config.n_queues) {
        return 0;
    }
    let mut x = (config.table_size as u64) ^ ((config.n_queues as u64) << 32);
    for chunk in config.key.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        x ^= u64::from_le_bytes(word);
    }
    // splitmix64 finalizer: spreads the seed over the queue range.
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % config.n_queues as u64) as usize
}

impl RssDispatcher {
    /// Builds a dispatcher with a round-robin indirection table. When the
    /// table size is not a multiple of the queue count, the fill is rotated
    /// by [`boot_fill_offset`] so the remainder entries land on a
    /// config-seeded run of queues rather than always on the first ones.
    pub fn new(config: RssConfig) -> Self {
        assert!(config.n_queues > 0, "need at least one queue");
        assert!(
            config.table_size.is_power_of_two(),
            "indirection table size must be a power of two"
        );
        // A table smaller than the queue count would silently blackhole
        // queues >= table_size: no hash index could ever name them, so they
        // would simply never receive traffic. Reject the config instead.
        assert!(
            config.table_size >= config.n_queues,
            "indirection table too small: {} entries cannot address {} queues \
             (queues >= {} would never receive traffic); use \
             RssConfig::for_queues, which grows the table",
            config.table_size,
            config.n_queues,
            config.table_size,
        );
        let offset = boot_fill_offset(&config);
        let indirection = (0..config.table_size)
            .map(|i| ((i + offset) % config.n_queues) as u32)
            .collect();
        RssDispatcher {
            hasher: ToeplitzTable::new(&config.key),
            config,
            indirection,
        }
    }

    /// Builds a dispatcher with an explicit indirection table (e.g. one
    /// produced by a [`crate::rebalance`] policy, or a table observed from
    /// a defender in a previous attack–defense round).
    pub fn with_table(config: RssConfig, table: Vec<u32>) -> Self {
        let mut d = Self::new(config);
        d.set_table(table);
        d
    }

    /// The default dispatcher for `n_queues` cores.
    pub fn for_queues(n_queues: usize) -> Self {
        Self::new(RssConfig::for_queues(n_queues))
    }

    /// Number of receive queues.
    pub fn n_queues(&self) -> usize {
        self.config.n_queues
    }

    /// This dispatcher's configuration.
    pub fn config(&self) -> &RssConfig {
        &self.config
    }

    /// The current indirection table (`table()[entry]` is the queue).
    pub fn table(&self) -> &[u32] {
        &self.indirection
    }

    /// Replaces the indirection table — the rebalancing primitive real NICs
    /// expose (`ethtool -X` / `ETH_RSS` reprogramming). The new table must
    /// keep the configured size and only name existing queues; flows are
    /// re-dispatched under the new table from the next packet on.
    pub fn set_table(&mut self, table: Vec<u32>) {
        assert_eq!(
            table.len(),
            self.config.table_size,
            "indirection table must keep its configured size"
        );
        assert!(
            table.iter().all(|&q| (q as usize) < self.config.n_queues),
            "indirection table names a queue that does not exist"
        );
        self.indirection = table;
    }

    /// Replaces the Toeplitz key — the key-rotation primitive real NICs
    /// expose (`ethtool -X ... hkey`). Every flow's hash, indirection entry
    /// and queue change from the next packet on; the indirection table
    /// itself is untouched. An attacker who fingerprinted the old key must
    /// re-fingerprint before it can steer again.
    pub fn set_key(&mut self, key: [u8; RSS_KEY_LEN]) {
        self.config.key = key;
        self.hasher = ToeplitzTable::new(&key);
    }

    /// RSS hash of a flow (precomputed-table fast path).
    pub fn hash_of(&self, flow: &FlowKey) -> u32 {
        self.hasher.hash_flow(flow)
    }

    /// Queues for a whole batch of flows in one pass (the receive-side hot
    /// path: one table-driven hash and one indirection lookup per flow).
    pub fn queues_of_flows(&self, flows: &[FlowKey]) -> Vec<usize> {
        let mask = self.config.table_size - 1;
        self.hasher
            .hash_flows(flows)
            .into_iter()
            .map(|h| self.indirection[(h as usize) & mask] as usize)
            .collect()
    }

    /// The indirection-table entry a flow indexes (stable under table
    /// rewrites — only the entry→queue mapping changes, never the entry).
    pub fn entry_of_flow(&self, flow: &FlowKey) -> usize {
        (self.hash_of(flow) as usize) & (self.config.table_size - 1)
    }

    /// The indirection-table entry a packet indexes, or `None` for packets
    /// without a tracked TCP/UDP flow (which bypass the table and land on
    /// queue 0 regardless of any rebalance).
    pub fn entry_of_packet(&self, packet: &Packet) -> Option<usize> {
        packet.flow().map(|f| self.entry_of_flow(&f))
    }

    /// The queue a flow is dispatched to.
    pub fn queue_of_flow(&self, flow: &FlowKey) -> usize {
        self.indirection[self.entry_of_flow(flow)] as usize
    }

    /// The queue a packet is dispatched to. Packets without a tracked
    /// TCP/UDP flow (ARP, ICMP, …) carry no RSS hash and fall back to
    /// queue 0, as real NICs do.
    pub fn queue_of_packet(&self, packet: &Packet) -> usize {
        match packet.flow() {
            Some(flow) => self.queue_of_flow(&flow),
            None => 0,
        }
    }

    /// Searches the free 5-tuple dimensions for a variant of `flow` that
    /// lands on `target` *and* is accepted by `distinct`, trying source
    /// ports first (scanning outward from the current port) and then
    /// source-address low bits. Destination address, destination port and
    /// protocol are never touched — those are what the traffic is *for*.
    ///
    /// This is the attacker primitive behind queue-skew workloads: with a
    /// known key, on average `n_queues` candidates suffice, so the search
    /// is cheap. Returns `None` only if every candidate is rejected.
    pub fn steer_flow(
        &self,
        flow: &FlowKey,
        target: usize,
        mut distinct: impl FnMut(&FlowKey) -> bool,
    ) -> Option<FlowKey> {
        assert!(target < self.config.n_queues, "target queue out of range");
        let mut check = |candidate: FlowKey| -> Option<FlowKey> {
            (self.queue_of_flow(&candidate) == target && distinct(&candidate)).then_some(candidate)
        };
        if let Some(found) = check(*flow) {
            return Some(found);
        }
        // Source-port scan: wrap around the full 16-bit space, visiting
        // every non-zero source port exactly once. A wrapped port of 0 (not
        // a valid source port on the wire) is skipped, never clamped —
        // clamping would alias it onto port 1, re-testing a duplicate
        // candidate while silently skipping a real one. `1..=u16::MAX`
        // covers all 65535 deltas; the original port was tried above.
        for delta in 1..=u16::MAX {
            let port = flow.src_port.wrapping_add(delta);
            if port == 0 {
                continue;
            }
            let mut candidate = *flow;
            candidate.src_port = port;
            if let Some(found) = check(candidate) {
                return Some(found);
            }
        }
        // Source-address low-byte scan (e.g. a /24 of attack sources), with
        // a 256-port scan nested per address — again skipping a wrapped
        // port 0 instead of aliasing it onto port 1.
        for ip_delta in 1..=u8::MAX {
            let mut octets = flow.src_ip.octets();
            octets[3] = octets[3].wrapping_add(ip_delta);
            for delta in 0..256u16 {
                let port = flow.src_port.wrapping_add(delta);
                if port == 0 {
                    continue;
                }
                let mut candidate = *flow;
                candidate.src_ip = Ipv4Addr::new(octets[0], octets[1], octets[2], octets[3]);
                candidate.src_port = port;
                if let Some(found) = check(candidate) {
                    return Some(found);
                }
            }
        }
        None
    }
}

/// Rewrites `packet` so that its flow becomes `flow` (source endpoint
/// only — destination and protocol are asserted unchanged, matching what
/// [`RssDispatcher::steer_flow`] produces). Non-flow packets are returned
/// unchanged.
pub fn steer_packet(packet: &Packet, flow: &FlowKey) -> Packet {
    let mut out = *packet;
    let Some(current) = packet.flow() else {
        return out;
    };
    assert_eq!(current.dst_ip, flow.dst_ip, "steering must not retarget");
    assert_eq!(
        current.dst_port, flow.dst_port,
        "steering must not retarget"
    );
    assert_eq!(current.proto, flow.proto, "steering must not retarget");
    if let Some(ip) = out.ipv4.as_mut() {
        ip.src = flow.src_ip;
    }
    match &mut out.l4 {
        L4Header::Udp(u) => u.src_port = flow.src_port,
        L4Header::Tcp(t) => t.src_port = flow.src_port,
        L4Header::None => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_packet::PacketBuilder;

    fn flow(i: u64) -> FlowKey {
        FlowKey::udp(
            Ipv4Addr::new(10, (i >> 16) as u8, (i >> 8) as u8, i as u8),
            1024 + (i % 50_000) as u16,
            Ipv4Addr::new(93, 184, 216, 34),
            80,
        )
    }

    #[test]
    fn queues_cover_all_cores_roughly_evenly() {
        let d = RssDispatcher::for_queues(4);
        let mut counts = [0usize; 4];
        for i in 0..4096 {
            counts[d.queue_of_flow(&flow(i))] += 1;
        }
        for (q, &c) in counts.iter().enumerate() {
            assert!(
                (700..=1400).contains(&c),
                "queue {q} got {c} of 4096 flows — dispatch is badly skewed"
            );
        }
    }

    #[test]
    fn uneven_tables_spread_the_remainder_deterministically() {
        // Divisible configs keep the exact `i % n_queues` boot fill the
        // pinned byte-identical results depend on.
        for n in [1usize, 2, 4, 8] {
            let d = RssDispatcher::for_queues(n);
            for (i, &q) in d.table().iter().enumerate() {
                assert_eq!(q as usize, i % n, "divisible fill must stay i % n");
            }
        }
        // Non-divisible configs stay within one entry of each other, are
        // reproducible, and the under-provisioned queues are not pinned to
        // the tail of the queue range for every configuration.
        let mut light_is_always_last = true;
        for n in [3usize, 5, 6, 7, 12] {
            let d = RssDispatcher::for_queues(n);
            assert_eq!(d.table(), RssDispatcher::for_queues(n).table());
            let mut counts = vec![0usize; n];
            for &q in d.table() {
                counts[q as usize] += 1;
            }
            let min = *counts.iter().min().unwrap();
            let max = *counts.iter().max().unwrap();
            assert!(
                max - min <= 1,
                "{n} queues: fill spread {counts:?} exceeds the unavoidable ±1"
            );
            if counts[n - 1] != min {
                light_is_always_last = false;
            }
        }
        assert!(
            !light_is_always_last,
            "the seeded offset never moved the remainder off the default run"
        );
    }

    #[test]
    fn one_queue_sends_everything_to_core_zero() {
        let d = RssDispatcher::for_queues(1);
        for i in 0..256 {
            assert_eq!(d.queue_of_flow(&flow(i)), 0);
        }
    }

    #[test]
    fn batched_queues_match_per_flow_dispatch() {
        let mut d = RssDispatcher::for_queues(8);
        let flows: Vec<FlowKey> = (0..512).map(flow).collect();
        let batched = d.queues_of_flows(&flows);
        for (f, q) in flows.iter().zip(&batched) {
            assert_eq!(*q, d.queue_of_flow(f));
        }
        // And the fast path tracks key rotations.
        d.set_key(crate::toeplitz::rotate_key(&RSS_MS_DEFAULT_KEY, 5));
        let rotated = d.queues_of_flows(&flows);
        for (f, q) in flows.iter().zip(&rotated) {
            assert_eq!(*q, d.queue_of_flow(f));
        }
        assert_ne!(batched, rotated, "rotation must re-dispatch flows");
    }

    #[test]
    fn packets_follow_their_flow() {
        let d = RssDispatcher::for_queues(8);
        for i in 0..256 {
            let f = flow(i);
            let p = PacketBuilder::udp_flow(f).build();
            assert_eq!(d.queue_of_packet(&p), d.queue_of_flow(&f));
        }
        // Non-flow packets land on queue 0.
        let arp = PacketBuilder::new()
            .ethertype(castan_packet::EtherType::Arp)
            .build();
        assert_eq!(d.queue_of_packet(&arp), 0);
    }

    #[test]
    fn steering_lands_every_flow_on_the_victim_queue() {
        let d = RssDispatcher::for_queues(4);
        for target in 0..4 {
            for i in 0..128 {
                let f = flow(i);
                let steered = d.steer_flow(&f, target, |_| true).expect("steerable");
                assert_eq!(d.queue_of_flow(&steered), target);
                assert_eq!(steered.dst_ip, f.dst_ip);
                assert_eq!(steered.dst_port, f.dst_port);
                assert_eq!(steered.proto, f.proto);
            }
        }
    }

    #[test]
    fn steering_respects_the_distinctness_filter() {
        let d = RssDispatcher::for_queues(2);
        let f = flow(7);
        let first = d.steer_flow(&f, 0, |_| true).unwrap();
        let second = d.steer_flow(&f, 0, |c| *c != first).unwrap();
        assert_ne!(first, second);
        assert_eq!(d.queue_of_flow(&second), 0);
    }

    #[test]
    fn steering_enumerates_every_nonzero_port_exactly_once() {
        // One queue, reject-all filter: every candidate reaches `distinct`.
        // The flat scan must offer all 65535 non-zero source ports exactly
        // once — no duplicate from a wrapped port aliasing onto port 1, no
        // silently skipped port — even when the scan wraps past 0.
        let d = RssDispatcher::for_queues(1);
        for start_port in [1u16, 80, u16::MAX, 1024] {
            let f = FlowKey::udp(
                Ipv4Addr::new(10, 0, 0, 1),
                start_port,
                Ipv4Addr::new(93, 184, 216, 34),
                80,
            );
            let mut offered: Vec<u16> = Vec::new();
            let result = d.steer_flow(&f, 0, |c| {
                if c.src_ip == f.src_ip {
                    offered.push(c.src_port);
                }
                false // reject everything: force the full enumeration
            });
            assert!(result.is_none(), "reject-all must exhaust the search");
            let mut sorted = offered.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(
                sorted.len(),
                offered.len(),
                "no source port may be offered twice (start {start_port})"
            );
            assert_eq!(
                sorted,
                (1..=u16::MAX).collect::<Vec<u16>>(),
                "every non-zero source port must be offered (start {start_port})"
            );
        }
    }

    #[test]
    fn per_ip_scan_skips_port_zero_without_aliasing() {
        // Start at a port whose 256-delta window wraps past 0: the nested
        // per-IP scan must skip the wrapped 0, not clamp it onto port 1.
        let d = RssDispatcher::for_queues(1);
        let f = FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            u16::MAX - 10,
            Ipv4Addr::new(93, 184, 216, 34),
            80,
        );
        let mut per_ip: std::collections::BTreeMap<u32, Vec<u16>> = Default::default();
        let _ = d.steer_flow(&f, 0, |c| {
            if c.src_ip != f.src_ip {
                per_ip.entry(c.src_ip.0).or_default().push(c.src_port);
            }
            false
        });
        assert_eq!(per_ip.len(), 255, "255 neighbour addresses scanned");
        for (ip, ports) in per_ip {
            let mut sorted = ports.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), ports.len(), "duplicate port on ip {ip:#x}");
            assert_eq!(ports.len(), 255, "window wraps past 0, so one skipped");
            assert!(ports.iter().all(|&p| p != 0));
        }
    }

    #[test]
    #[should_panic(expected = "indirection table too small")]
    fn tables_smaller_than_the_queue_count_are_rejected() {
        // 256 queues cannot be addressed by a 128-entry table: queues >= 128
        // would silently never receive traffic.
        let _ = RssDispatcher::new(RssConfig {
            n_queues: 256,
            key: RSS_MS_DEFAULT_KEY,
            table_size: 128,
        });
    }

    #[test]
    fn for_queues_grows_the_table_past_128_queues() {
        let d = RssDispatcher::for_queues(256);
        assert_eq!(d.config().table_size, 512);
        // Every queue appears in the table — nothing is blackholed.
        let mut seen = vec![false; 256];
        for &q in d.table() {
            seen[q as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "every queue receives table entries"
        );
        // And the small default is untouched.
        assert_eq!(RssDispatcher::for_queues(4).config().table_size, 128);
    }

    #[test]
    fn set_table_redirects_flows_immediately() {
        let mut d = RssDispatcher::for_queues(4);
        let f = flow(11);
        let entry = d.entry_of_flow(&f);
        let before = d.queue_of_flow(&f);
        let mut table = d.table().to_vec();
        let new_queue = (before + 1) % 4;
        table[entry] = new_queue as u32;
        d.set_table(table);
        assert_eq!(d.queue_of_flow(&f), new_queue);
        assert_eq!(d.entry_of_flow(&f), entry, "entries are table-independent");
        let p = PacketBuilder::udp_flow(f).build();
        assert_eq!(d.entry_of_packet(&p), Some(entry));
    }

    #[test]
    #[should_panic(expected = "names a queue that does not exist")]
    fn set_table_rejects_out_of_range_queues() {
        let mut d = RssDispatcher::for_queues(2);
        let mut table = d.table().to_vec();
        table[0] = 7;
        d.set_table(table);
    }

    #[test]
    fn steer_packet_rewrites_only_the_source_endpoint() {
        let f = flow(3);
        let p = PacketBuilder::udp_flow(f).ttl(17).build();
        let d = RssDispatcher::for_queues(4);
        let steered_flow = d.steer_flow(&f, 2, |_| true).unwrap();
        let q = steer_packet(&p, &steered_flow);
        assert_eq!(q.flow(), Some(steered_flow));
        assert_eq!(q.ipv4.unwrap().ttl, 17, "unrelated fields survive");
        assert_eq!(
            q.field(castan_packet::PacketField::DstIp),
            p.field(castan_packet::PacketField::DstIp)
        );
    }
}

//! Telemetry instrumentation of the dispatch/rebalance layer.
//!
//! The runtime crate owns the indirection table, so it is the layer that
//! can answer "how concentrated is the load *per table entry*" and "what
//! did a rebalance actually move" — the two signals the control-plane
//! detector and the event trace need. [`DispatchInstrument`] is the
//! per-epoch per-entry packet accounting (a telemetry-only sibling of
//! [`LoadTracker`](crate::LoadTracker), which exists only while a
//! mitigation is active); [`record_rebalance`] and [`record_key_rotation`]
//! turn table rewrites and key-schedule steps into registry events and
//! counters. Everything here is observational: nothing feeds back into
//! dispatch decisions.

use castan_telemetry::{EventKind, Registry};

/// Gauge name: fraction of this epoch's dispatched packets that hit the
/// single hottest indirection-table entry (the per-entry analogue of the
/// per-core `dispatch.max_core_share` skew signal).
pub const GAUGE_MAX_ENTRY_SHARE: &str = "dispatch.max_entry_share";
/// Counter name: indirection-table entries moved by rebalances.
pub const COUNTER_ENTRIES_MOVED: &str = "rebalance.entries_moved";
/// Counter name: rebalances that rewrote the table.
pub const COUNTER_REBALANCES: &str = "rebalance.count";
/// Counter name: Toeplitz key rotations installed.
pub const COUNTER_KEY_ROTATIONS: &str = "rebalance.key_rotations";

/// Per-epoch, per-indirection-entry dispatch accounting.
#[derive(Clone, Debug)]
pub struct DispatchInstrument {
    counts: Vec<u64>,
    total: u64,
}

impl DispatchInstrument {
    /// Zeroed accounting over a table of `table_size` entries.
    pub fn new(table_size: usize) -> Self {
        DispatchInstrument {
            counts: vec![0; table_size],
            total: 0,
        }
    }

    /// Records one packet dispatched through `entry`.
    pub fn record(&mut self, entry: usize) {
        self.counts[entry] += 1;
        self.total += 1;
    }

    /// Packets recorded this epoch.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The hottest entry's share of this epoch's packets (0.0 when no
    /// packet was recorded).
    pub fn max_entry_share(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let max = self.counts.iter().copied().max().unwrap_or(0);
        max as f64 / self.total as f64
    }

    /// Seals the epoch into `reg` (the [`GAUGE_MAX_ENTRY_SHARE`] gauge)
    /// and resets the accounting for the next epoch.
    pub fn seal_into(&mut self, reg: &mut Registry) {
        if self.total > 0 {
            reg.gauge(GAUGE_MAX_ENTRY_SHARE, self.max_entry_share());
        }
        self.counts.fill(0);
        self.total = 0;
    }
}

/// Records a table rewrite: counts the entries whose queue changed, bumps
/// the rebalance counters and appends a [`EventKind::Rebalance`] event.
/// Returns the number of moved entries (0 records nothing).
pub fn record_rebalance(reg: &mut Registry, old: &[u32], new: &[u32]) -> usize {
    debug_assert_eq!(old.len(), new.len(), "table size is fixed per run");
    let moved = old.iter().zip(new).filter(|(a, b)| a != b).count();
    if moved > 0 {
        reg.count(COUNTER_REBALANCES, 1);
        reg.count(COUNTER_ENTRIES_MOVED, moved as u64);
        reg.event(EventKind::Rebalance, format!("entries_moved={moved}"));
    }
    moved
}

/// Records an installed per-epoch Toeplitz key rotation.
pub fn record_key_rotation(reg: &mut Registry, epoch: u64) {
    reg.count(COUNTER_KEY_ROTATIONS, 1);
    reg.event(EventKind::KeyRotation, format!("epoch={epoch}"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_share_tracks_the_hottest_entry_and_resets_on_seal() {
        let mut reg = Registry::new();
        let mut d = DispatchInstrument::new(8);
        for _ in 0..6 {
            d.record(3);
        }
        d.record(0);
        d.record(1);
        assert_eq!(d.max_entry_share(), 0.75);
        d.seal_into(&mut reg);
        reg.seal_epoch();
        assert_eq!(reg.gauge_at(GAUGE_MAX_ENTRY_SHARE, 0), Some(0.75));
        assert_eq!(d.total(), 0);
        assert_eq!(d.max_entry_share(), 0.0);
    }

    #[test]
    fn rebalance_records_moved_entries_and_identity_rewrites_record_nothing() {
        let mut reg = Registry::new();
        let old = vec![0u32, 1, 0, 1];
        let new = vec![0u32, 1, 1, 0];
        assert_eq!(record_rebalance(&mut reg, &old, &new), 2);
        assert_eq!(record_rebalance(&mut reg, &old, &old), 0);
        assert_eq!(reg.counter_total(COUNTER_REBALANCES), 1);
        assert_eq!(reg.counter_total(COUNTER_ENTRIES_MOVED), 2);
        assert_eq!(reg.events().len(), 1);
        record_key_rotation(&mut reg, 1);
        assert_eq!(reg.counter_total(COUNTER_KEY_ROTATIONS), 1);
    }
}

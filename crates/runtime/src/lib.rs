//! # castan-runtime
//!
//! The multi-core execution layer of the CASTAN reproduction: receive-side
//! scaling (RSS) in front of N simulated cores.
//!
//! Real NIC hardware spreads incoming packets over per-core receive queues
//! by Toeplitz-hashing the 5-tuple and indexing an indirection table with
//! the low hash bits; every packet of a flow therefore lands on the same
//! core, and per-flow NF state never migrates. This crate models exactly
//! that datapath, plus the batching that DPDK-style runtimes use to
//! amortise dispatch cost:
//!
//! * [`toeplitz`] — the Toeplitz hash with Microsoft's published default
//!   key, validated against the official RSS verification vectors, plus
//!   [`rotate_key`], the per-epoch key schedule of the key-rotation
//!   mitigation.
//! * [`dispatch`] — [`RssConfig`]/[`RssDispatcher`]: hash → indirection
//!   table → queue, plus *steering*: searching the free 5-tuple dimensions
//!   (source port, then source address) for a rewrite that lands a flow on
//!   a chosen queue.
//! * [`skew`] — [`skew_packets`]: steering whole packet sequences onto one
//!   victim queue while preserving flow distinctness and consistency.
//!   This is what the adversarial queue-skew synthesis in `castan-core`
//!   and the skewed workload generators build on: a sender who knows (or
//!   has fingerprinted) the RSS key can concentrate arbitrary traffic onto
//!   one victim core. [`skew_packets_per_epoch`] is the *adaptive* variant:
//!   it re-steers each epoch-long segment against that epoch's indirection
//!   table, so the skew chases a rebalancing defender.
//! * [`rebalance`] — the defense: per-entry load accounting
//!   ([`LoadTracker`], weighing either packet counts or execution cycles
//!   per [`LoadMetric`]) and weighted indirection-table rewrite policies
//!   ([`RebalancePolicy`]: round-robin, least-loaded greedy,
//!   power-of-two-choices) with imbalance hysteresis.
//! * [`batch`] — [`Batcher`]: per-queue buffering with a configurable
//!   batch size; the testbed charges the per-batch dispatch overhead once
//!   per batch instead of once per packet.
//! * [`instrument`] — telemetry hooks over this layer: per-epoch
//!   per-entry dispatch accounting ([`DispatchInstrument`]) and
//!   rebalance/key-rotation event recording into a
//!   `castan_telemetry::Registry`. Observational only.
//!
//! Everything here is pure flow/packet logic — no cache model, no cost
//! accounting. The simulated cores themselves (private L1/L2 in front of a
//! shared L3) live in `castan-mem::multicore`, and the sharded
//! chain-execution DUT that ties dispatch, batching and the cache model
//! together lives in `castan-testbed::shard`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dispatch;
pub mod instrument;
pub mod rebalance;
pub mod skew;
pub mod toeplitz;

pub use batch::Batcher;
pub use dispatch::{steer_packet, RssConfig, RssDispatcher};
pub use instrument::{record_key_rotation, record_rebalance, DispatchInstrument};
pub use rebalance::{
    queue_loads, rebalanced_table, LoadMetric, LoadTracker, RebalancePolicy, REBALANCE_TRIGGER_DEN,
    REBALANCE_TRIGGER_NUM,
};
pub use skew::{skew_packets, skew_packets_per_epoch, EpochSkewSynthesis, SkewSynthesis};
pub use toeplitz::{
    rotate_key, toeplitz_hash, ToeplitzTable, RSS_INPUT_LEN, RSS_KEY_LEN, RSS_MS_DEFAULT_KEY,
};

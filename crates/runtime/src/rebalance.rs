//! Indirection-table rebalancing: the defense side of the queue-skew
//! attack.
//!
//! Real deployments answer RSS load imbalance by reprogramming the NIC's
//! indirection table (`ethtool -X`, flow director, or a driver-level
//! rebalancer): the Toeplitz hash and the table *entry* a flow indexes
//! never change, only the entry→queue mapping does, so a rebalance moves
//! whole entries — and every flow hashing to them — between queues. This
//! module provides:
//!
//! * [`LoadTracker`] — per-entry load accounting over one epoch: packet
//!   counts and execution cycles (either of which the rewrite policies can
//!   weigh, selected by [`LoadMetric`]) plus the set of distinct flows per
//!   entry (what a migration cost model charges when an entry changes
//!   queues).
//! * [`RebalancePolicy`] and [`rebalanced_table`] — the weighted table
//!   rewrite policies: static round-robin, least-loaded greedy (LPT
//!   scheduling of entries onto queues), and periodic
//!   power-of-two-choices. All are deterministic; power-of-two-choices
//!   draws its candidate queues from an RNG seeded by the epoch index.
//!
//! Rebalancing has hysteresis: [`rebalanced_table`] keeps the current
//! table unless the busiest queue carries more than
//! [`REBALANCE_TRIGGER_NUM`]/[`REBALANCE_TRIGGER_DEN`] (5/4) of the mean
//! per-queue load. Without it, a from-scratch greedy rewrite would churn
//! entries (and charge flow-state migrations) every epoch even under
//! perfectly balanced traffic.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The table rewrite policies a rebalancing defender can run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RebalancePolicy {
    /// Rewrite to the static round-robin fill (the boot-time table). A
    /// non-defense included as the baseline: it ignores the observed loads
    /// entirely, so a skewed flow population stays skewed.
    RoundRobin,
    /// Least-loaded greedy: entries sorted by observed load (heaviest
    /// first), each assigned to the queue with the least load assigned so
    /// far — longest-processing-time scheduling of entries onto queues.
    LeastLoaded,
    /// Power-of-two-choices: for each entry (heaviest first) draw two
    /// candidate queues from an epoch-seeded RNG and take the less loaded
    /// one. Cheaper than a full sort-and-scan on huge tables, and the
    /// classic load-balancing result says it is nearly as good.
    PowerOfTwoChoices,
}

impl RebalancePolicy {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            RebalancePolicy::RoundRobin => "round-robin",
            RebalancePolicy::LeastLoaded => "least-loaded",
            RebalancePolicy::PowerOfTwoChoices => "power-of-two",
        }
    }
}

/// Which per-entry load signal a rebalancing defender feeds its
/// [`RebalancePolicy`].
///
/// Packet counts are what real drivers read off the queue statistics, but
/// they under-weigh heavy flows: an entry carrying ten cheap NOP-ish
/// packets looks busier than one carrying a single packet that walks a
/// pathological trie for thousands of cycles. Cycle accounting weighs
/// entries by the execution time they actually cost their queue's core, so
/// LPT-style policies spread the *work*, not the packet count.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum LoadMetric {
    /// Weigh entries by dispatched packet count (the classic driver view).
    #[default]
    Packets,
    /// Weigh entries by the execution cycles their packets cost.
    Cycles,
}

impl LoadMetric {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            LoadMetric::Packets => "packets",
            LoadMetric::Cycles => "cycles",
        }
    }
}

/// Rebalance trigger numerator: rewrite only when the busiest queue's load
/// exceeds `NUM/DEN` of the mean per-queue load (25 % over fair share).
pub const REBALANCE_TRIGGER_NUM: u64 = 5;
/// Rebalance trigger denominator. See [`REBALANCE_TRIGGER_NUM`].
pub const REBALANCE_TRIGGER_DEN: u64 = 4;

/// Per-queue load implied by per-entry `loads` under `table`.
pub fn queue_loads(loads: &[u64], table: &[u32], n_queues: usize) -> Vec<u64> {
    assert_eq!(loads.len(), table.len(), "one load per table entry");
    let mut out = vec![0u64; n_queues];
    for (e, &load) in loads.iter().enumerate() {
        out[table[e] as usize] += load;
    }
    out
}

/// Computes the next indirection table from one epoch's per-entry `loads`.
///
/// Returns `current` unchanged (the hysteresis no-op) when the busiest
/// queue is within [`REBALANCE_TRIGGER_NUM`]`/`[`REBALANCE_TRIGGER_DEN`]
/// of the mean per-queue load, when there was no load at all, or when
/// there is only one queue. `epoch` seeds the power-of-two-choices RNG, so
/// the whole schedule is deterministic given the traffic.
pub fn rebalanced_table(
    policy: RebalancePolicy,
    loads: &[u64],
    current: &[u32],
    n_queues: usize,
    epoch: u64,
) -> Vec<u32> {
    assert!(n_queues > 0, "need at least one queue");
    assert_eq!(loads.len(), current.len(), "one load per table entry");
    let total: u64 = loads.iter().sum();
    let max_queue = queue_loads(loads, current, n_queues)
        .into_iter()
        .max()
        .unwrap_or(0);
    // Trigger iff max > (NUM/DEN) * (total / n_queues), in integers.
    let triggered =
        max_queue * REBALANCE_TRIGGER_DEN * (n_queues as u64) > total * REBALANCE_TRIGGER_NUM;
    if total == 0 || n_queues == 1 || !triggered {
        return current.to_vec();
    }

    match policy {
        RebalancePolicy::RoundRobin => (0..current.len()).map(|i| (i % n_queues) as u32).collect(),
        RebalancePolicy::LeastLoaded => {
            let mut order: Vec<usize> = (0..loads.len()).collect();
            // Heaviest entries first; index ascending as the deterministic
            // tie-break.
            order.sort_by_key(|&e| (std::cmp::Reverse(loads[e]), e));
            let mut assigned = vec![0u64; n_queues];
            // Secondary balance criterion: entry count. Without it every
            // zero-load entry would greedily land on the same queue (its
            // assignment never changes the load), leaving a lopsided table
            // for whatever traffic shows up on cold entries next epoch.
            let mut entries = vec![0u32; n_queues];
            let mut table = vec![0u32; current.len()];
            for e in order {
                let q = (0..n_queues)
                    .min_by_key(|&q| (assigned[q], entries[q], q))
                    .unwrap();
                table[e] = q as u32;
                assigned[q] += loads[e];
                entries[q] += 1;
            }
            table
        }
        RebalancePolicy::PowerOfTwoChoices => {
            let mut order: Vec<usize> = (0..loads.len()).collect();
            order.sort_by_key(|&e| (std::cmp::Reverse(loads[e]), e));
            let mut rng = StdRng::seed_from_u64(epoch ^ 0x9E37_79B9_7F4A_7C15);
            let mut assigned = vec![0u64; n_queues];
            let mut table = vec![0u32; current.len()];
            for e in order {
                let a: usize = rng.random_range(0..n_queues);
                let b: usize = rng.random_range(0..n_queues);
                let q = if (assigned[a], a) <= (assigned[b], b) {
                    a
                } else {
                    b
                };
                table[e] = q as u32;
                assigned[q] += loads[e];
            }
            table
        }
    }
}

/// Per-entry load accounting over one rebalance epoch.
#[derive(Clone, Debug)]
pub struct LoadTracker {
    counts: Vec<u64>,
    cycles: Vec<u64>,
    flows: Vec<BTreeSet<u128>>,
}

impl LoadTracker {
    /// A tracker for a `table_size`-entry indirection table.
    pub fn new(table_size: usize) -> Self {
        LoadTracker {
            counts: vec![0; table_size],
            cycles: vec![0; table_size],
            flows: vec![BTreeSet::new(); table_size],
        }
    }

    /// Records one dispatched packet on `entry`; `flow` is the packet's
    /// 5-tuple key (as `FlowKey::to_u128`) when it has one.
    pub fn record(&mut self, entry: usize, flow: Option<u128>) {
        self.counts[entry] += 1;
        if let Some(f) = flow {
            self.flows[entry].insert(f);
        }
    }

    /// Charges `cycles` of execution time to `entry` — called when the
    /// packet *executes* (batch granularity), which is after it was
    /// dispatched and [`LoadTracker::record`]ed. Keeping the two signals
    /// separate lets the same tracker serve both metrics.
    pub fn record_cycles(&mut self, entry: usize, cycles: u64) {
        self.cycles[entry] += cycles;
    }

    /// Per-entry packet counts this epoch.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Per-entry execution cycles this epoch.
    pub fn cycles(&self) -> &[u64] {
        &self.cycles
    }

    /// The per-entry load vector under the chosen metric — what
    /// [`rebalanced_table`] weighs.
    pub fn loads(&self, metric: LoadMetric) -> &[u64] {
        match metric {
            LoadMetric::Packets => &self.counts,
            LoadMetric::Cycles => &self.cycles,
        }
    }

    /// Total packets recorded this epoch.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Distinct flows observed on entries that change queues between `old`
    /// and `new`, attributed to the *destination* queue — the core that
    /// must pull each flow's state across when the rebalance lands.
    pub fn moved_flows_per_queue(&self, old: &[u32], new: &[u32], n_queues: usize) -> Vec<usize> {
        assert_eq!(old.len(), new.len());
        assert_eq!(old.len(), self.flows.len());
        let mut out = vec![0usize; n_queues];
        for e in 0..old.len() {
            if old[e] != new[e] {
                out[new[e] as usize] += self.flows[e].len();
            }
        }
        out
    }

    /// Total distinct flows moved by an `old` → `new` rewrite.
    pub fn moved_flows(&self, old: &[u32], new: &[u32]) -> usize {
        self.moved_flows_per_queue(old, new, 1 + *new.iter().max().unwrap_or(&0) as usize)
            .iter()
            .sum()
    }

    /// Clears the epoch's accounting (counts, cycles and flow sets).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.cycles.iter_mut().for_each(|c| *c = 0);
        self.flows.iter_mut().for_each(BTreeSet::clear);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_robin(table_size: usize, n_queues: usize) -> Vec<u32> {
        (0..table_size).map(|i| (i % n_queues) as u32).collect()
    }

    #[test]
    fn balanced_load_keeps_the_current_table() {
        let current = round_robin(16, 4);
        let loads = vec![10u64; 16];
        for policy in [
            RebalancePolicy::RoundRobin,
            RebalancePolicy::LeastLoaded,
            RebalancePolicy::PowerOfTwoChoices,
        ] {
            assert_eq!(
                rebalanced_table(policy, &loads, &current, 4, 0),
                current,
                "{} must not churn a balanced table",
                policy.name()
            );
        }
    }

    #[test]
    fn zero_load_and_single_queue_are_no_ops() {
        let current = round_robin(8, 2);
        assert_eq!(
            rebalanced_table(RebalancePolicy::LeastLoaded, &[0; 8], &current, 2, 1),
            current
        );
        let one = round_robin(8, 1);
        assert_eq!(
            rebalanced_table(RebalancePolicy::LeastLoaded, &[9; 8], &one, 1, 1),
            one
        );
    }

    #[test]
    fn least_loaded_balances_a_skewed_epoch() {
        // Queue-skew shape: all load on the entries currently mapping to
        // queue 0, nothing anywhere else.
        let current = round_robin(128, 4);
        let loads: Vec<u64> = (0..128).map(|e| if e % 4 == 0 { 100 } else { 0 }).collect();
        let new = rebalanced_table(RebalancePolicy::LeastLoaded, &loads, &current, 4, 3);
        assert_ne!(new, current, "full skew must trigger a rewrite");
        let per_queue = queue_loads(&loads, &new, 4);
        let (min, max) = (
            per_queue.iter().min().unwrap(),
            per_queue.iter().max().unwrap(),
        );
        assert_eq!(per_queue.iter().sum::<u64>(), 3200);
        assert!(
            max - min <= 100,
            "greedy LPT must spread the 32 hot entries evenly: {per_queue:?}"
        );
    }

    #[test]
    fn power_of_two_is_deterministic_per_epoch_and_spreads() {
        let current = round_robin(128, 4);
        let loads: Vec<u64> = (0..128).map(|e| if e % 4 == 0 { 50 } else { 0 }).collect();
        let a = rebalanced_table(RebalancePolicy::PowerOfTwoChoices, &loads, &current, 4, 7);
        let b = rebalanced_table(RebalancePolicy::PowerOfTwoChoices, &loads, &current, 4, 7);
        assert_eq!(a, b, "same epoch seed, same table");
        let c = rebalanced_table(RebalancePolicy::PowerOfTwoChoices, &loads, &current, 4, 8);
        assert!(a.iter().all(|&q| q < 4));
        let per_queue = queue_loads(&loads, &a, 4);
        let max = *per_queue.iter().max().unwrap();
        assert!(
            max <= 2 * (1600 / 4),
            "two choices must avoid piling everything on one queue: {per_queue:?}"
        );
        // Different epochs draw different candidates (almost surely).
        assert_ne!(a, c, "epoch seeds the candidate draws");
    }

    #[test]
    fn round_robin_policy_restores_the_boot_table() {
        let mut current = round_robin(16, 4);
        current[0] = 3; // a previous rewrite
        let mut loads = vec![0u64; 16];
        loads[0] = 1000; // all load on one entry: triggered
        let new = rebalanced_table(RebalancePolicy::RoundRobin, &loads, &current, 4, 0);
        assert_eq!(new, round_robin(16, 4));
    }

    #[test]
    fn cycle_metric_stops_under_weighing_heavy_flows() {
        // Entry 0 carries ONE packet that costs 10 000 cycles (a
        // pathological flow); entries 1..16 carry 10 cheap packets each
        // (100 cycles apiece). By packet count the heavy entry looks idle;
        // by cycles it dominates the epoch.
        let mut t = LoadTracker::new(16);
        t.record(0, Some(0));
        t.record_cycles(0, 10_000);
        for e in 1..16 {
            for p in 0..10u64 {
                t.record(e, Some((e as u128) << 32 | p as u128));
                t.record_cycles(e, 100);
            }
        }
        assert_eq!(t.loads(LoadMetric::Packets), t.counts());
        assert_eq!(t.loads(LoadMetric::Cycles), t.cycles());
        assert_eq!(t.counts()[0], 1);
        assert_eq!(t.cycles()[0], 10_000);

        // All 16 entries currently map to queue 0 of 4: both metrics
        // trigger, but only the cycle metric isolates the heavy entry —
        // LPT by packets piles four entries (40 packets ≈ 4 000 cycles)
        // onto the heavy entry's queue, because a 1-packet entry looks
        // free.
        let current = vec![0u32; 16];
        let by_packets = rebalanced_table(
            RebalancePolicy::LeastLoaded,
            t.loads(LoadMetric::Packets),
            &current,
            4,
            1,
        );
        let by_cycles = rebalanced_table(
            RebalancePolicy::LeastLoaded,
            t.loads(LoadMetric::Cycles),
            &current,
            4,
            1,
        );
        let heavy_queue_cycles =
            |table: &[u32]| queue_loads(t.cycles(), table, 4)[table[0] as usize];
        assert_eq!(
            heavy_queue_cycles(&by_cycles),
            10_000,
            "by cycles, the heavy entry gets a queue to itself"
        );
        assert!(
            heavy_queue_cycles(&by_packets) >= 10_000 + 3 * 1_000,
            "by packets, cheap entries pile onto the heavy entry's queue: \
             {} cycles",
            heavy_queue_cycles(&by_packets)
        );
        // reset() clears the cycle accounting too.
        t.reset();
        assert!(t.cycles().iter().all(|&c| c == 0));
    }

    #[test]
    fn load_tracker_counts_and_attributes_moved_flows() {
        let mut t = LoadTracker::new(8);
        t.record(0, Some(1));
        t.record(0, Some(1)); // replay: same flow, counted once as a flow
        t.record(0, Some(2));
        t.record(3, Some(9));
        t.record(5, None); // non-flow packet: load without a flow
        assert_eq!(t.total(), 5);
        assert_eq!(t.counts()[0], 3);
        let old: Vec<u32> = vec![0; 8];
        let mut new = old.clone();
        new[0] = 2; // entry 0 (2 flows) moves to queue 2
        assert_eq!(t.moved_flows(&old, &new), 2);
        assert_eq!(t.moved_flows_per_queue(&old, &new, 4), vec![0, 0, 2, 0]);
        t.reset();
        assert_eq!(t.total(), 0);
        assert_eq!(t.moved_flows(&old, &new), 0);
    }
}

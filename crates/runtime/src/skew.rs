//! Queue-skew steering of whole packet sequences.
//!
//! [`skew_packets`] rewrites a packet sequence so that every tracked flow
//! hashes to one victim RSS queue, preserving two invariants the
//! adversarial workloads rely on:
//!
//! 1. **Flow distinctness** — two distinct input flows never merge into
//!    one steered flow, so flow-table pressure (the NAT/LB attack surface)
//!    survives the rewrite.
//! 2. **Flow consistency** — every replay of an input flow maps to the
//!    *same* steered flow, so per-flow NF state behaves as in the
//!    original sequence.
//!
//! Only the source endpoint is rewritten (via
//! [`RssDispatcher::steer_flow`]); destination address, destination port
//! and protocol — what the traffic is *for* — are never touched.

use std::collections::{BTreeMap, BTreeSet};

use castan_packet::{FlowKey, Packet};

use crate::dispatch::{steer_packet, RssConfig, RssDispatcher};

/// The result of steering a packet sequence onto one RSS queue.
#[derive(Clone, Debug)]
pub struct SkewSynthesis {
    /// The steered packets (same order as the input sequence).
    pub packets: Vec<Packet>,
    /// The victim queue every steerable packet now lands on.
    pub target_queue: usize,
    /// Packets whose 5-tuple already hashed to the victim queue.
    pub already_on_queue: usize,
    /// Packets whose source endpoint was rewritten to reach the queue.
    pub steered: usize,
    /// Packets left untouched (no tracked flow, or no distinct candidate
    /// found — in practice only non-TCP/UDP packets).
    pub unsteerable: usize,
}

impl SkewSynthesis {
    /// Fraction of the sequence now dispatched to the victim queue.
    pub fn skew_ratio(&self, dispatcher: &RssDispatcher) -> f64 {
        if self.packets.is_empty() {
            return 0.0;
        }
        let on_queue = self
            .packets
            .iter()
            .filter(|p| dispatcher.queue_of_packet(p) == self.target_queue)
            .count();
        on_queue as f64 / self.packets.len() as f64
    }
}

/// Steers `packets` onto `target_queue` of `dispatcher`; see the module
/// docs for the preserved invariants.
pub fn skew_packets(
    packets: &[Packet],
    dispatcher: &RssDispatcher,
    target_queue: usize,
) -> SkewSynthesis {
    // Original flow → steered flow, plus the set of already-claimed
    // steered flows (kept separately so the distinctness check stays
    // O(log F) per candidate — full-scale traces steer hundreds of
    // thousands of flows).
    let mut mapping: BTreeMap<u128, FlowKey> = BTreeMap::new();
    let mut used: BTreeSet<u128> = BTreeSet::new();
    let mut out = Vec::with_capacity(packets.len());
    let mut already = 0usize;
    let mut steered = 0usize;
    let mut unsteerable = 0usize;

    for pkt in packets {
        let Some(flow) = pkt.flow() else {
            unsteerable += 1;
            out.push(*pkt);
            continue;
        };
        let key = flow.to_u128();
        let target_flow = match mapping.get(&key) {
            Some(f) => Some(*f),
            None => {
                let fresh = |candidate: &FlowKey| !used.contains(&candidate.to_u128());
                let found = dispatcher.steer_flow(&flow, target_queue, fresh);
                if let Some(f) = found {
                    mapping.insert(key, f);
                    used.insert(f.to_u128());
                }
                found
            }
        };
        match target_flow {
            Some(f) => {
                if f == flow {
                    already += 1;
                } else {
                    steered += 1;
                }
                out.push(steer_packet(pkt, &f));
            }
            None => {
                unsteerable += 1;
                out.push(*pkt);
            }
        }
    }

    SkewSynthesis {
        packets: out,
        target_queue,
        already_on_queue: already,
        steered,
        unsteerable,
    }
}

/// The result of the *adaptive* epoch-aware steering pass.
#[derive(Clone, Debug)]
pub struct EpochSkewSynthesis {
    /// The steered trace (same length and order as the input).
    pub packets: Vec<Packet>,
    /// The victim queue targeted in every epoch.
    pub target_queue: usize,
    /// Number of epochs the trace was split into.
    pub epochs: usize,
    /// Total packets steered (source endpoint rewritten) across all epochs.
    pub steered: usize,
    /// Total packets that already hashed to the victim queue under their
    /// epoch's table.
    pub already_on_queue: usize,
    /// Total packets left untouched.
    pub unsteerable: usize,
}

/// The adaptive attacker primitive: steers each epoch-long segment of
/// `packets` onto `target_queue` against *that epoch's* indirection table,
/// so the skew chases a rebalancing defender instead of attacking only the
/// boot-time table.
///
/// `tables[e]` is the table the defender had active during epoch `e` (as
/// observed in a previous attack–defense round); segments beyond the last
/// known table are steered against it. Within an epoch the
/// [`skew_packets`] invariants hold (flow distinctness and consistency);
/// *across* epochs a replayed flow may be re-steered to a different source
/// endpoint — exactly what a real adaptive sender does when the defender
/// moves its entry, at the price of fresh per-flow NF state in the new
/// epoch.
pub fn skew_packets_per_epoch(
    packets: &[Packet],
    config: RssConfig,
    tables: &[Vec<u32>],
    epoch_packets: usize,
    target_queue: usize,
) -> EpochSkewSynthesis {
    assert!(epoch_packets > 0, "epochs must contain packets");
    assert!(!tables.is_empty(), "need at least the boot-time table");
    let mut out = Vec::with_capacity(packets.len());
    let mut steered = 0usize;
    let mut already = 0usize;
    let mut unsteerable = 0usize;
    let mut epochs = 0usize;
    for (e, segment) in packets.chunks(epoch_packets).enumerate() {
        epochs += 1;
        let table = tables[e.min(tables.len() - 1)].clone();
        let dispatcher = RssDispatcher::with_table(config, table);
        let s = skew_packets(segment, &dispatcher, target_queue);
        steered += s.steered;
        already += s.already_on_queue;
        unsteerable += s.unsteerable;
        out.extend(s.packets);
    }
    EpochSkewSynthesis {
        packets: out,
        target_queue,
        epochs,
        steered,
        already_on_queue: already,
        unsteerable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_packet::{Ipv4Addr, PacketBuilder};
    use std::collections::BTreeSet;

    fn dispatcher() -> RssDispatcher {
        RssDispatcher::for_queues(4)
    }

    fn diverse_packets(n: u64) -> Vec<Packet> {
        (0..n)
            .map(|i| {
                PacketBuilder::new()
                    .src_ip(Ipv4Addr::new(10, 1, (i >> 8) as u8, i as u8))
                    .src_port(2000 + (i % 40_000) as u16)
                    .dst_ip(Ipv4Addr::new(93, 184, 216, 34))
                    .dst_port(80)
                    .build()
            })
            .collect()
    }

    #[test]
    fn every_tracked_packet_lands_on_the_victim_queue() {
        let d = dispatcher();
        let packets = diverse_packets(200);
        for target in 0..4 {
            let s = skew_packets(&packets, &d, target);
            assert_eq!(s.unsteerable, 0);
            assert_eq!(s.skew_ratio(&d), 1.0, "target {target}");
            assert_eq!(s.packets.len(), packets.len());
        }
    }

    #[test]
    fn steering_preserves_flow_distinctness_and_destinations() {
        let d = dispatcher();
        let packets = diverse_packets(300);
        let s = skew_packets(&packets, &d, 1);
        let flows: BTreeSet<u128> = s
            .packets
            .iter()
            .map(|p| p.flow().unwrap().to_u128())
            .collect();
        assert_eq!(flows.len(), 300, "distinct flows must stay distinct");
        for (orig, steered) in packets.iter().zip(&s.packets) {
            assert_eq!(
                orig.field(castan_packet::PacketField::DstIp),
                steered.field(castan_packet::PacketField::DstIp)
            );
            assert_eq!(
                orig.field(castan_packet::PacketField::DstPort),
                steered.field(castan_packet::PacketField::DstPort)
            );
        }
    }

    #[test]
    fn replayed_flows_follow_their_first_steering() {
        let d = dispatcher();
        // Force the interesting case on every queue: whichever queue the
        // flow natively hashes to, the three other targets require a
        // rewrite, and all replays must follow it.
        for target in 0..4 {
            let one = diverse_packets(1).remove(0);
            let s = skew_packets(&[one, one, one], &d, target);
            let flows: BTreeSet<u128> = s
                .packets
                .iter()
                .map(|p| p.flow().unwrap().to_u128())
                .collect();
            assert_eq!(flows.len(), 1, "a replayed flow is steered once");
            assert_eq!(s.skew_ratio(&d), 1.0);
        }
    }

    #[test]
    fn zipf_style_repeats_keep_their_popularity_profile() {
        // 10 flows, heavily repeated: the steered trace must still have 10
        // distinct flows with the same per-flow packet counts.
        let d = dispatcher();
        let base = diverse_packets(10);
        let mut trace = Vec::new();
        for (i, p) in base.iter().enumerate() {
            for _ in 0..=(10 - i) {
                trace.push(*p);
            }
        }
        let s = skew_packets(&trace, &d, 0);
        assert_eq!(s.skew_ratio(&d), 1.0);
        let mut counts: BTreeMap<u128, usize> = BTreeMap::new();
        for p in &s.packets {
            *counts.entry(p.flow().unwrap().to_u128()).or_default() += 1;
        }
        assert_eq!(counts.len(), 10);
        let mut sizes: Vec<usize> = counts.values().copied().collect();
        sizes.sort_unstable();
        assert_eq!(sizes, (2..=11).collect::<Vec<usize>>());
    }

    #[test]
    fn epoch_steering_chases_per_epoch_tables() {
        // Two epochs with different tables: each segment must land on the
        // victim queue under its *own* epoch's table.
        let config = RssDispatcher::for_queues(4).config().to_owned();
        let boot = RssDispatcher::new(config).table().to_vec();
        // Epoch 1's table: rotate every entry by one queue.
        let rotated: Vec<u32> = boot.iter().map(|&q| (q + 1) % 4).collect();
        let tables = vec![boot.clone(), rotated.clone()];
        let packets = diverse_packets(100);
        let s = skew_packets_per_epoch(&packets, config, &tables, 50, 2);
        assert_eq!(s.epochs, 2);
        assert_eq!(s.packets.len(), 100);
        assert_eq!(s.unsteerable, 0);
        let d0 = RssDispatcher::with_table(config, boot);
        let d1 = RssDispatcher::with_table(config, rotated);
        for (i, p) in s.packets.iter().enumerate() {
            let d = if i < 50 { &d0 } else { &d1 };
            assert_eq!(d.queue_of_packet(p), 2, "packet {i} missed its epoch table");
        }
        // Segments beyond the known tables reuse the last one.
        let one_table = vec![d0.table().to_vec()];
        let s2 = skew_packets_per_epoch(&packets, config, &one_table, 30, 1);
        assert_eq!(s2.epochs, 4);
        assert!(s2.packets.iter().all(|p| d0.queue_of_packet(p) == 1));
    }

    #[test]
    fn non_flow_packets_pass_through_unsteered() {
        let d = dispatcher();
        let arp = PacketBuilder::new()
            .ethertype(castan_packet::EtherType::Arp)
            .build();
        let s = skew_packets(&[arp], &d, 3);
        assert_eq!(s.unsteerable, 1);
        assert_eq!(s.packets[0], arp);
    }
}

//! The Toeplitz hash used by receive-side scaling.
//!
//! RSS-capable NICs hash the packet's flow identity with a Toeplitz hash
//! over a secret (but readable and, in practice, often default) 40-byte
//! key: the hash of an input bit string is the XOR of one 32-bit key
//! window per set input bit, where the window for bit `i` is bits
//! `i..i+32` of the key. For IPv4 TCP/UDP the input is the concatenation
//! of source address, destination address, source port and destination
//! port, all big-endian — 12 bytes, 96 bits.
//!
//! The implementation is validated against the verification suite from
//! Microsoft's RSS specification (the same vectors DPDK and the Linux
//! kernel test against), so the adversarial queue-skew synthesis attacks
//! the *real* deployed hash, not a stand-in.

use castan_packet::FlowKey;

/// Length of an RSS hash key in bytes.
pub const RSS_KEY_LEN: usize = 40;

/// Microsoft's default RSS key (the verification-suite key, also shipped
/// as the default by several NIC drivers — which is precisely why
/// queue-skew attacks work in practice).
pub const RSS_MS_DEFAULT_KEY: [u8; RSS_KEY_LEN] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// The 32-bit key window starting at bit offset `bit` of `key`.
fn key_window(key: &[u8; RSS_KEY_LEN], bit: usize) -> u32 {
    let byte = bit / 8;
    let off = bit % 8;
    let mut v: u64 = 0;
    for k in 0..8 {
        v = (v << 8) | u64::from(*key.get(byte + k).unwrap_or(&0));
    }
    (v >> (32 - off)) as u32
}

/// Toeplitz hash of `data` under `key`. `data` may be at most
/// `RSS_KEY_LEN - 4` bytes (the key must cover every 32-bit window).
pub fn toeplitz_hash(key: &[u8; RSS_KEY_LEN], data: &[u8]) -> u32 {
    assert!(
        data.len() <= RSS_KEY_LEN - 4,
        "input longer than the key supports"
    );
    let mut hash = 0u32;
    for (i, &b) in data.iter().enumerate() {
        for j in 0..8 {
            if b & (0x80 >> j) != 0 {
                hash ^= key_window(key, i * 8 + j);
            }
        }
    }
    hash
}

/// The 12-byte RSS input of an IPv4 TCP/UDP flow: src addr, dst addr,
/// src port, dst port, all big-endian.
pub fn rss_input(flow: &FlowKey) -> [u8; 12] {
    let mut out = [0u8; 12];
    out[0..4].copy_from_slice(&flow.src_ip.octets());
    out[4..8].copy_from_slice(&flow.dst_ip.octets());
    out[8..10].copy_from_slice(&flow.src_port.to_be_bytes());
    out[10..12].copy_from_slice(&flow.dst_port.to_be_bytes());
    out
}

/// RSS hash of a flow under `key`.
pub fn rss_hash(key: &[u8; RSS_KEY_LEN], flow: &FlowKey) -> u32 {
    toeplitz_hash(key, &rss_input(flow))
}

/// Length of the IPv4 TCP/UDP RSS input in bytes.
pub const RSS_INPUT_LEN: usize = 12;

/// Precomputed per-byte Toeplitz lookup tables for the 12-byte IPv4
/// TCP/UDP RSS input.
///
/// The Toeplitz hash is GF(2)-linear in its input, so the contribution of
/// byte position `i` depends only on that byte's value: precomputing the
/// 256 possible contributions per position turns the 96 conditional
/// key-window XORs of the bit-by-bit definition into 12 table lookups per
/// hash. Batches of 5-tuples are then hashed in one pass with no per-bit
/// work at all — this is what the dispatch and steering hot paths use.
#[derive(Clone)]
pub struct ToeplitzTable {
    /// `table[i][b]` = XOR of the key windows selected by byte value `b`
    /// at input byte position `i`.
    table: [[u32; 256]; RSS_INPUT_LEN],
}

impl std::fmt::Debug for ToeplitzTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToeplitzTable").finish_non_exhaustive()
    }
}

impl ToeplitzTable {
    /// Precomputes the lookup tables for `key`.
    pub fn new(key: &[u8; RSS_KEY_LEN]) -> ToeplitzTable {
        let mut table = [[0u32; 256]; RSS_INPUT_LEN];
        for (i, row) in table.iter_mut().enumerate() {
            // Windows for the 8 bits of byte i.
            let mut windows = [0u32; 8];
            for (j, w) in windows.iter_mut().enumerate() {
                *w = key_window(key, i * 8 + j);
            }
            for (b, slot) in row.iter_mut().enumerate() {
                let mut h = 0u32;
                for (j, w) in windows.iter().enumerate() {
                    if b & (0x80 >> j) != 0 {
                        h ^= w;
                    }
                }
                *slot = h;
            }
        }
        ToeplitzTable { table }
    }

    /// Hash of one 12-byte RSS input — identical to
    /// [`toeplitz_hash`] over the same bytes.
    pub fn hash_input(&self, input: &[u8; RSS_INPUT_LEN]) -> u32 {
        let mut h = 0u32;
        for (i, &b) in input.iter().enumerate() {
            h ^= self.table[i][b as usize];
        }
        h
    }

    /// Hash of one flow — identical to [`rss_hash`] under the table's key.
    pub fn hash_flow(&self, flow: &FlowKey) -> u32 {
        self.hash_input(&rss_input(flow))
    }

    /// Hashes a whole batch of flows in one pass.
    pub fn hash_flows(&self, flows: &[FlowKey]) -> Vec<u32> {
        flows.iter().map(|f| self.hash_flow(f)).collect()
    }
}

/// The per-epoch Toeplitz key schedule of the key-rotation mitigation:
/// derives epoch `epoch`'s key from `base` with a deterministic xorshift
/// keystream seeded by (base key, epoch). Epoch 0 is the base key itself —
/// a rotation-enabled run starts from the same dispatch as a plain one.
///
/// Deterministic derivation stands in for the driver reprogramming a fresh
/// random key (`ethtool -X ... hkey`): the defender's schedule is
/// reproducible for the experiments, while an attacker who fingerprinted
/// the base key sees every flow's queue re-randomised at each boundary and
/// must re-fingerprint mid-attack.
pub fn rotate_key(base: &[u8; RSS_KEY_LEN], epoch: u64) -> [u8; RSS_KEY_LEN] {
    if epoch == 0 {
        return *base;
    }
    let mut state = epoch ^ 0x9E37_79B9_7F4A_7C15;
    for chunk in base.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        state ^= u64::from_le_bytes(w);
        state = state.wrapping_mul(0xA24B_AED4_963E_E407);
    }
    let mut out = [0u8; RSS_KEY_LEN];
    for b in out.iter_mut() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        *b = state as u8;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_packet::Ipv4Addr;

    /// One row of the Microsoft RSS verification suite:
    /// (dst ip, dst port, src ip, src port, expected IPv4-with-ports hash).
    type Vector = ((u8, u8, u8, u8), u16, (u8, u8, u8, u8), u16, u32);

    const VECTORS: [Vector; 3] = [
        (
            (161, 142, 100, 80),
            1766,
            (66, 9, 149, 187),
            2794,
            0x51cc_c178,
        ),
        (
            (65, 69, 140, 83),
            4739,
            (199, 92, 111, 2),
            14230,
            0xc626_b0ea,
        ),
        (
            (12, 22, 207, 184),
            38024,
            (24, 19, 198, 95),
            12898,
            0x5c2b_394a,
        ),
    ];

    #[test]
    fn matches_the_microsoft_verification_suite() {
        for (dst, dport, src, sport, expected) in VECTORS {
            let flow = FlowKey::udp(
                Ipv4Addr::new(src.0, src.1, src.2, src.3),
                sport,
                Ipv4Addr::new(dst.0, dst.1, dst.2, dst.3),
                dport,
            );
            assert_eq!(
                rss_hash(&RSS_MS_DEFAULT_KEY, &flow),
                expected,
                "vector {flow:?}"
            );
        }
    }

    #[test]
    fn rotated_keys_are_deterministic_distinct_and_redispatch_flows() {
        assert_eq!(rotate_key(&RSS_MS_DEFAULT_KEY, 0), RSS_MS_DEFAULT_KEY);
        let k1 = rotate_key(&RSS_MS_DEFAULT_KEY, 1);
        assert_eq!(k1, rotate_key(&RSS_MS_DEFAULT_KEY, 1), "deterministic");
        let k2 = rotate_key(&RSS_MS_DEFAULT_KEY, 2);
        assert_ne!(k1, RSS_MS_DEFAULT_KEY);
        assert_ne!(k1, k2, "every epoch gets its own key");
        // Rotation actually re-randomises dispatch: over a flow population,
        // a substantial fraction changes its hash low bits (and therefore
        // its indirection entry) between consecutive keys.
        let mut moved = 0;
        for i in 0..512u64 {
            let flow = FlowKey::udp(
                Ipv4Addr::new(10, (i >> 8) as u8, i as u8, 1),
                1024 + i as u16,
                Ipv4Addr::new(93, 184, 216, 34),
                80,
            );
            if rss_hash(&k1, &flow) % 128 != rss_hash(&k2, &flow) % 128 {
                moved += 1;
            }
        }
        assert!(moved > 400, "rotation must reshuffle entries: {moved}/512");
    }

    #[test]
    fn hash_is_a_pure_function_of_the_tuple() {
        let flow = FlowKey::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            1234,
            Ipv4Addr::new(10, 0, 0, 2),
            80,
        );
        let a = rss_hash(&RSS_MS_DEFAULT_KEY, &flow);
        let b = rss_hash(&RSS_MS_DEFAULT_KEY, &flow);
        assert_eq!(a, b);
        // Any single-field change moves the hash (Toeplitz is linear in
        // GF(2), and the windows for distinct bits differ).
        let mut other = flow;
        other.src_port ^= 1;
        assert_ne!(a, rss_hash(&RSS_MS_DEFAULT_KEY, &other));
    }

    #[test]
    fn batched_table_hashes_equal_per_packet_hashes() {
        // The precomputed-table path must agree bit-for-bit with the
        // per-packet bit-by-bit definition, on the Microsoft vectors and on
        // a spread of generated flows, under both the default key and a
        // rotated key.
        for key in [RSS_MS_DEFAULT_KEY, rotate_key(&RSS_MS_DEFAULT_KEY, 3)] {
            let table = ToeplitzTable::new(&key);
            for (dst, dport, src, sport, _) in VECTORS {
                let flow = FlowKey::udp(
                    Ipv4Addr::new(src.0, src.1, src.2, src.3),
                    sport,
                    Ipv4Addr::new(dst.0, dst.1, dst.2, dst.3),
                    dport,
                );
                assert_eq!(table.hash_flow(&flow), rss_hash(&key, &flow));
            }
            let flows: Vec<FlowKey> = (0..1024u64)
                .map(|i| {
                    FlowKey::udp(
                        Ipv4Addr::new(10, (i >> 8) as u8, i as u8, (i * 7) as u8),
                        1 + (i * 131) as u16,
                        Ipv4Addr::new(93, 184, 216, 34),
                        80,
                    )
                })
                .collect();
            let batched = table.hash_flows(&flows);
            for (flow, h) in flows.iter().zip(&batched) {
                assert_eq!(*h, rss_hash(&key, flow), "batched == per-packet");
            }
        }
    }

    #[test]
    fn empty_input_hashes_to_zero() {
        assert_eq!(toeplitz_hash(&RSS_MS_DEFAULT_KEY, &[]), 0);
    }

    #[test]
    #[should_panic(expected = "longer than the key")]
    fn oversized_input_is_rejected() {
        let _ = toeplitz_hash(&RSS_MS_DEFAULT_KEY, &[0u8; 37]);
    }
}

//! The online attack detector — the first control-plane consumer of the
//! per-epoch telemetry series.
//!
//! The paper's adversarial workloads leave epoch-scale signatures that
//! benign traffic does not:
//!
//! * **Queue skew** (RSS-skew, adaptive-skew, cluster-skew): the attacker
//!   steers all 5-tuples onto one receive queue, so the busiest core's
//!   share of dispatched packets ([`SIG_MAX_CORE_SHARE`]) jumps from
//!   `≈ 1/n_cores` toward 1.0.
//! * **Cache-adversarial traffic** (CASTAN synthesis, neighbor-evict): the
//!   packets (or a noisy neighbour's replay) drive the shared L3 far off
//!   the benign working set, inflating misses per packet
//!   ([`SIG_MISSES_PER_PACKET`]) and, for CASTAN's
//!   worst-case-execution-path packets, cycles per packet
//!   ([`SIG_CYCLES_PER_PACKET`]).
//! * **Worst-case execution paths** (CASTAN synthesis): a small replayed
//!   trace runs warm, so its misses — and with them total cycles — can sit
//!   *below* cold benign traffic; what cannot hide is the algorithmic work
//!   itself, instructions retired per packet
//!   ([`SIG_INSTRUCTIONS_PER_PACKET`]).
//!
//! Detection is threshold-over-learned-baseline: a [`Baseline`] is
//! calibrated offline from benign reference runs (the maximum each signal
//! reached in any calibration epoch), a [`DetectorConfig`] scales it by
//! per-signal factors, and the [`Detector`] polls the registry once per
//! sealed epoch, raising an [`Alarm`] the first epoch a signal crosses its
//! threshold. Epochs with fewer than `min_epoch_packets` packets are
//! skipped (end-of-run tails are too noisy to judge). The detector never
//! mutates the registry; the closed-loop DUT charges its polling cost
//! explicitly.

use crate::{Histogram, Registry};

/// Gauge name: busiest core's share of packets dispatched this epoch.
pub const SIG_MAX_CORE_SHARE: &str = "dispatch.max_core_share";
/// Gauge name: shared-L3 misses per executed packet this epoch.
pub const SIG_MISSES_PER_PACKET: &str = "mem.l3_misses_per_packet";
/// Gauge name: end-to-end cycles per executed packet this epoch.
pub const SIG_CYCLES_PER_PACKET: &str = "exec.cycles_per_packet";
/// Gauge name: instructions retired per executed packet this epoch.
pub const SIG_INSTRUCTIONS_PER_PACKET: &str = "exec.instructions_per_packet";
/// Gauge name: packets executed this epoch (the detector's denominator
/// guard).
pub const SIG_EPOCH_PACKETS: &str = "exec.epoch_packets";

/// Which signature a threshold crossing matched.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackSignature {
    /// Per-core load concentration: queue-skew steering.
    QueueSkew,
    /// Misses-per-packet deviation: cache-adversarial traffic
    /// (neighbor-evict, CASTAN).
    MissInflation,
    /// Cycles-per-packet deviation: worst-case-execution-path traffic
    /// (CASTAN).
    CycleInflation,
    /// Instructions-per-packet deviation: worst-case-execution-path
    /// traffic whose warm working set keeps its misses (and so its total
    /// cycles) inside the benign envelope (CASTAN replay).
    InstructionInflation,
}

impl AttackSignature {
    /// Stable lower-snake name (used in JSON summaries).
    pub fn name(&self) -> &'static str {
        match self {
            AttackSignature::QueueSkew => "queue_skew",
            AttackSignature::MissInflation => "miss_inflation",
            AttackSignature::CycleInflation => "cycle_inflation",
            AttackSignature::InstructionInflation => "instruction_inflation",
        }
    }
}

/// One threshold crossing.
#[derive(Clone, Debug)]
pub struct Alarm {
    /// The sealed epoch whose series crossed the threshold.
    pub epoch: u64,
    /// Which signal crossed.
    pub signature: AttackSignature,
    /// The signal's value in that epoch.
    pub value: f64,
    /// The threshold it crossed.
    pub threshold: f64,
}

/// The benign envelope: the maximum each detection signal reached in any
/// calibration epoch.
#[derive(Clone, Copy, Debug)]
pub struct Baseline {
    /// Max benign [`SIG_MAX_CORE_SHARE`].
    pub max_core_share: f64,
    /// Max benign [`SIG_MISSES_PER_PACKET`].
    pub misses_per_packet: f64,
    /// Max benign [`SIG_CYCLES_PER_PACKET`].
    pub cycles_per_packet: f64,
    /// Max benign [`SIG_INSTRUCTIONS_PER_PACKET`].
    pub instructions_per_packet: f64,
}

impl Baseline {
    /// Learns the envelope from benign reference registries: the maximum
    /// each signal reached in any sealed epoch with at least
    /// `min_epoch_packets` packets. Panics if no epoch qualifies (an
    /// unusable calibration is a configuration error, not a baseline).
    pub fn learn(registries: &[&Registry], min_epoch_packets: u64) -> Baseline {
        let mut out = Baseline {
            max_core_share: 0.0,
            misses_per_packet: 0.0,
            cycles_per_packet: 0.0,
            instructions_per_packet: 0.0,
        };
        let mut epochs = 0usize;
        for reg in registries {
            for e in 0..reg.epoch() {
                let pkts = reg.gauge_at(SIG_EPOCH_PACKETS, e).unwrap_or(0.0);
                if pkts < min_epoch_packets as f64 {
                    continue;
                }
                epochs += 1;
                if let Some(v) = reg.gauge_at(SIG_MAX_CORE_SHARE, e) {
                    out.max_core_share = out.max_core_share.max(v);
                }
                if let Some(v) = reg.gauge_at(SIG_MISSES_PER_PACKET, e) {
                    out.misses_per_packet = out.misses_per_packet.max(v);
                }
                if let Some(v) = reg.gauge_at(SIG_CYCLES_PER_PACKET, e) {
                    out.cycles_per_packet = out.cycles_per_packet.max(v);
                }
                if let Some(v) = reg.gauge_at(SIG_INSTRUCTIONS_PER_PACKET, e) {
                    out.instructions_per_packet = out.instructions_per_packet.max(v);
                }
            }
        }
        assert!(epochs > 0, "no calibration epoch had enough packets");
        out
    }

    /// Like [`Baseline::learn`], but robust to rare benign outlier epochs:
    /// each signal's envelope is the `q`-quantile (e.g. `0.9`) of its
    /// per-epoch values across all qualifying calibration epochs, estimated
    /// from a log-scale [`Histogram`] of fixed-point-scaled gauge values.
    ///
    /// Because a histogram quantile never exceeds the tracked maximum (and
    /// samples are floored into fixed point), every signal's quantile
    /// envelope is at most the [`Baseline::learn`] per-epoch maximum — the
    /// quantile can only *tighten* the benign envelope, letting the scaled
    /// thresholds catch attacks that hide just under a calibration spike.
    /// Panics if no epoch qualifies, like [`Baseline::learn`].
    pub fn learn_quantile(registries: &[&Registry], min_epoch_packets: u64, q: f64) -> Baseline {
        // Gauges are small floats (shares, per-packet ratios); the log-scale
        // histogram buckets integers, so samples are scaled into fixed point
        // first. Flooring keeps the quantile ≤ the true per-epoch maximum.
        const SCALE: f64 = (1u64 << 20) as f64;
        let mut hists = [
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
            Histogram::new(),
        ];
        const SIGNALS: [&str; 4] = [
            SIG_MAX_CORE_SHARE,
            SIG_MISSES_PER_PACKET,
            SIG_CYCLES_PER_PACKET,
            SIG_INSTRUCTIONS_PER_PACKET,
        ];
        let mut epochs = 0usize;
        for reg in registries {
            for e in 0..reg.epoch() {
                let pkts = reg.gauge_at(SIG_EPOCH_PACKETS, e).unwrap_or(0.0);
                if pkts < min_epoch_packets as f64 {
                    continue;
                }
                epochs += 1;
                for (h, sig) in hists.iter_mut().zip(SIGNALS) {
                    if let Some(v) = reg.gauge_at(sig, e) {
                        h.observe_f64((v * SCALE).floor());
                    }
                }
            }
        }
        assert!(epochs > 0, "no calibration epoch had enough packets");
        let env = |h: &Histogram| {
            if h.count() == 0 {
                0.0
            } else {
                h.quantile(q) / SCALE
            }
        };
        Baseline {
            max_core_share: env(&hists[0]),
            misses_per_packet: env(&hists[1]),
            cycles_per_packet: env(&hists[2]),
            instructions_per_packet: env(&hists[3]),
        }
    }
}

/// Detector thresholds: the learned baseline scaled by per-signal factors.
#[derive(Clone, Copy, Debug)]
pub struct DetectorConfig {
    /// The learned benign envelope.
    pub baseline: Baseline,
    /// Alarm when max-core-share exceeds `baseline.max_core_share` times
    /// this.
    pub share_factor: f64,
    /// Alarm when misses/pkt exceeds `baseline.misses_per_packet` times
    /// this.
    pub misses_factor: f64,
    /// Alarm when cycles/pkt exceeds `baseline.cycles_per_packet` times
    /// this.
    pub cycles_factor: f64,
    /// Alarm when instructions/pkt exceeds
    /// `baseline.instructions_per_packet` times this.
    pub instructions_factor: f64,
    /// Epochs with fewer executed packets than this are not judged.
    pub min_epoch_packets: u64,
}

impl DetectorConfig {
    /// Default factors: tight enough to catch full-skew (share → 1.0) and
    /// the measured CASTAN/neighbor-evict inflation, loose enough that
    /// benign epoch-to-epoch noise stays below every threshold (the
    /// `detect` experiment's zero-false-positive bar).
    pub fn with_baseline(baseline: Baseline) -> Self {
        DetectorConfig {
            baseline,
            share_factor: 1.5,
            misses_factor: 1.15,
            cycles_factor: 1.15,
            instructions_factor: 1.15,
            min_epoch_packets: 32,
        }
    }

    fn thresholds(&self) -> [(AttackSignature, &'static str, f64); 4] {
        [
            (
                AttackSignature::QueueSkew,
                SIG_MAX_CORE_SHARE,
                self.baseline.max_core_share * self.share_factor,
            ),
            (
                AttackSignature::MissInflation,
                SIG_MISSES_PER_PACKET,
                self.baseline.misses_per_packet * self.misses_factor,
            ),
            (
                AttackSignature::CycleInflation,
                SIG_CYCLES_PER_PACKET,
                self.baseline.cycles_per_packet * self.cycles_factor,
            ),
            (
                AttackSignature::InstructionInflation,
                SIG_INSTRUCTIONS_PER_PACKET,
                self.baseline.instructions_per_packet * self.instructions_factor,
            ),
        ]
    }
}

/// The online detector: polls a registry's sealed epochs in order and
/// records every threshold crossing.
#[derive(Clone, Debug)]
pub struct Detector {
    cfg: DetectorConfig,
    next_epoch: u64,
    alarms: Vec<Alarm>,
}

impl Detector {
    /// A detector with no epochs seen yet.
    pub fn new(cfg: DetectorConfig) -> Self {
        Detector {
            cfg,
            next_epoch: 0,
            alarms: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Polls every sealed-but-unseen epoch of `reg` (normally exactly one,
    /// right after `seal_epoch`). Returns the first alarm newly raised by
    /// this poll, if any.
    pub fn poll(&mut self, reg: &Registry) -> Option<Alarm> {
        let before = self.alarms.len();
        while self.next_epoch < reg.epoch() {
            let e = self.next_epoch;
            self.next_epoch += 1;
            let pkts = reg.gauge_at(SIG_EPOCH_PACKETS, e).unwrap_or(0.0);
            if pkts < self.cfg.min_epoch_packets as f64 {
                continue;
            }
            for (signature, gauge, threshold) in self.cfg.thresholds() {
                let Some(value) = reg.gauge_at(gauge, e) else {
                    continue;
                };
                if value > threshold {
                    self.alarms.push(Alarm {
                        epoch: e,
                        signature,
                        value,
                        threshold,
                    });
                }
            }
        }
        self.alarms.get(before).cloned()
    }

    /// Replays a fully recorded registry through a fresh detector —
    /// offline evaluation (the ROC sweep re-judges recorded runs under
    /// different factors without re-running the DUT).
    pub fn scan(cfg: DetectorConfig, reg: &Registry) -> Detector {
        let mut d = Detector::new(cfg);
        d.poll(reg);
        d
    }

    /// Every alarm raised so far, in epoch order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// The earliest alarm, if any.
    pub fn first_alarm(&self) -> Option<&Alarm> {
        self.alarms.first()
    }

    /// Epochs of data needed until the first alarm (first alarm epoch + 1);
    /// `None` when nothing was flagged — the experiment's time-to-detect.
    pub fn epochs_to_detect(&self) -> Option<u64> {
        self.first_alarm().map(|a| a.epoch + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn epoch(reg: &mut Registry, pkts: f64, share: f64, mpp: f64, cpp: f64) {
        reg.gauge(SIG_EPOCH_PACKETS, pkts);
        reg.gauge(SIG_MAX_CORE_SHARE, share);
        reg.gauge(SIG_MISSES_PER_PACKET, mpp);
        reg.gauge(SIG_CYCLES_PER_PACKET, cpp);
        reg.seal_epoch();
    }

    fn benign_baseline() -> Baseline {
        let mut reg = Registry::new();
        epoch(&mut reg, 500.0, 0.27, 2.0, 1000.0);
        epoch(&mut reg, 500.0, 0.30, 2.2, 1100.0);
        epoch(&mut reg, 10.0, 0.99, 9.9, 9999.0); // tail epoch: ignored
        Baseline::learn(&[&reg], 32)
    }

    #[test]
    fn baseline_is_the_max_over_qualifying_epochs() {
        let b = benign_baseline();
        assert_eq!(b.max_core_share, 0.30);
        assert_eq!(b.misses_per_packet, 2.2);
        assert_eq!(b.cycles_per_packet, 1100.0);
    }

    #[test]
    fn quantile_baseline_tightens_the_envelope_without_false_positives() {
        // Calibration with one benign outlier epoch (a warm-up spike): the
        // per-epoch maximum envelope is dragged up to the spike, while the
        // 0.9-quantile envelope stays at the typical epochs' bucket.
        let mut cal = Registry::new();
        for _ in 0..19 {
            epoch(&mut cal, 500.0, 0.30, 2.2, 1100.0);
        }
        epoch(&mut cal, 500.0, 0.90, 9.9, 9999.0); // benign outlier epoch
        let b = Baseline::learn(&[&cal], 32);
        let qb = Baseline::learn_quantile(&[&cal], 32, 0.9);
        // Never looser than the max envelope, strictly tighter on every
        // signal the outlier inflated.
        assert!(qb.max_core_share <= b.max_core_share);
        assert!(qb.misses_per_packet <= b.misses_per_packet);
        assert!(qb.cycles_per_packet <= b.cycles_per_packet);
        assert!(qb.max_core_share < b.max_core_share);
        assert!(qb.misses_per_packet < b.misses_per_packet);
        assert!(qb.cycles_per_packet < b.cycles_per_packet);

        // No false positives on typical benign traffic under the tightened
        // thresholds.
        let qcfg = DetectorConfig::with_baseline(qb);
        let mut benign = Registry::new();
        epoch(&mut benign, 500.0, 0.29, 2.15, 1080.0);
        epoch(&mut benign, 500.0, 0.30, 2.2, 1099.0);
        assert!(Detector::scan(qcfg, &benign).alarms().is_empty());

        // A skew attack hiding just under the calibration spike escapes
        // the max-envelope detector but not the quantile one.
        let mut sneaky = Registry::new();
        epoch(&mut sneaky, 500.0, 0.85, 2.1, 1050.0);
        let cfg = DetectorConfig::with_baseline(b);
        assert!(
            Detector::scan(cfg, &sneaky).alarms().is_empty(),
            "0.85 share hides under the 0.90 calibration spike times 1.5"
        );
        let a = Detector::scan(qcfg, &sneaky)
            .first_alarm()
            .cloned()
            .expect("the tightened envelope must catch the hidden skew");
        assert_eq!(a.signature, AttackSignature::QueueSkew);
    }

    #[test]
    fn skew_alarms_on_the_first_skewed_epoch_and_benign_does_not() {
        let cfg = DetectorConfig::with_baseline(benign_baseline());
        let mut attacked = Registry::new();
        epoch(&mut attacked, 500.0, 0.98, 2.1, 1050.0);
        let d = Detector::scan(cfg, &attacked);
        let a = d.first_alarm().expect("skew must alarm");
        assert_eq!(a.signature, AttackSignature::QueueSkew);
        assert_eq!(d.epochs_to_detect(), Some(1));

        let mut benign = Registry::new();
        epoch(&mut benign, 500.0, 0.29, 2.15, 1080.0);
        epoch(&mut benign, 500.0, 0.30, 2.2, 1099.0);
        assert!(Detector::scan(cfg, &benign).alarms().is_empty());
    }

    #[test]
    fn warm_worst_case_traffic_alarms_on_instructions_not_cycles() {
        // A replayed worst-case trace runs warm: misses and total cycles
        // stay inside a cold benign envelope, only instructions/pkt give
        // it away.
        let mut benign = Registry::new();
        epoch(&mut benign, 500.0, 0.30, 4.5, 1400.0);
        benign.gauge(SIG_INSTRUCTIONS_PER_PACKET, 400.0);
        epoch(&mut benign, 500.0, 0.28, 4.4, 1350.0);
        let b = Baseline::learn(&[&benign], 32);
        assert_eq!(b.instructions_per_packet, 400.0);

        let cfg = DetectorConfig::with_baseline(b);
        let mut attacked = Registry::new();
        attacked.gauge(SIG_INSTRUCTIONS_PER_PACKET, 650.0);
        epoch(&mut attacked, 500.0, 0.40, 1.0, 1100.0);
        let d = Detector::scan(cfg, &attacked);
        let a = d.first_alarm().expect("instruction inflation must alarm");
        assert_eq!(a.signature, AttackSignature::InstructionInflation);
        assert_eq!(d.alarms().len(), 1, "no cycle or miss alarm");
    }

    #[test]
    fn miss_inflation_alarms_and_poll_is_incremental() {
        let cfg = DetectorConfig::with_baseline(benign_baseline());
        let mut d = Detector::new(cfg);
        let mut reg = Registry::new();
        epoch(&mut reg, 500.0, 0.28, 2.1, 1000.0);
        assert!(d.poll(&reg).is_none());
        epoch(&mut reg, 500.0, 0.28, 3.5, 1000.0); // misses jump
        let a = d.poll(&reg).expect("inflated misses must alarm");
        assert_eq!(a.signature, AttackSignature::MissInflation);
        assert_eq!(a.epoch, 1);
        // Re-polling without new sealed epochs raises nothing new.
        assert!(d.poll(&reg).is_none());
        assert_eq!(d.alarms().len(), 1);
    }
}

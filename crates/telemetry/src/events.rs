//! Bounded ring-buffer event trace.
//!
//! Control-plane events (epoch boundaries, rebalance triggers, key
//! rotations, node drain/fail, work steals, detector alarms) are appended
//! to a fixed-capacity ring: when full, the *oldest* entry is dropped and
//! counted, so a long run keeps its most recent history and the trace
//! never grows unbounded — the standard flight-recorder contract.

use std::collections::VecDeque;

/// What happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A telemetry epoch was sealed.
    EpochBoundary,
    /// A rebalance policy rewrote the indirection table.
    Rebalance,
    /// The Toeplitz key was rotated.
    KeyRotation,
    /// Flow state was migrated after a rebalance.
    Migration,
    /// A batch executed away from its home core.
    WorkSteal,
    /// A cluster node was drained by the controller.
    NodeDrain,
    /// A cluster node failed.
    NodeFail,
    /// Per-flow state was rebuilt on a surviving node.
    NodeRebuild,
    /// The online detector raised an alarm.
    DetectorAlarm,
    /// A detector alarm activated a mitigation (closed loop).
    MitigationActivated,
}

impl EventKind {
    /// Stable lower-snake name (used in JSON snapshots).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::EpochBoundary => "epoch_boundary",
            EventKind::Rebalance => "rebalance",
            EventKind::KeyRotation => "key_rotation",
            EventKind::Migration => "migration",
            EventKind::WorkSteal => "work_steal",
            EventKind::NodeDrain => "node_drain",
            EventKind::NodeFail => "node_fail",
            EventKind::NodeRebuild => "node_rebuild",
            EventKind::DetectorAlarm => "detector_alarm",
            EventKind::MitigationActivated => "mitigation_activated",
        }
    }
}

/// One traced event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number over the whole run (survives drops).
    pub seq: u64,
    /// Telemetry epoch the event occurred in.
    pub epoch: u64,
    /// Event kind.
    pub kind: EventKind,
    /// Free-form detail (e.g. `"entries_moved=12"`).
    pub detail: String,
}

/// The bounded ring of events.
#[derive(Clone, Debug)]
pub struct EventTrace {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
    next_seq: u64,
}

impl EventTrace {
    /// An empty trace holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventTrace {
            buf: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            next_seq: 0,
        }
    }

    /// Appends an event, evicting (and counting) the oldest when full.
    pub fn push(&mut self, epoch: u64, kind: EventKind, detail: String) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            seq: self.next_seq,
            epoch,
            kind,
            detail,
        });
        self.next_seq += 1;
    }

    /// The retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever pushed (retained + dropped).
    pub fn total(&self) -> u64 {
        self.next_seq
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let mut t = EventTrace::new(3);
        for i in 0..5u64 {
            t.push(i, EventKind::EpochBoundary, format!("e{i}"));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.total(), 5);
        let seqs: Vec<u64> = t.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(t.iter().next().unwrap().detail, "e2");
    }
}

//! Fixed-bucket log-scale histograms.
//!
//! A [`Histogram`] has 65 fixed power-of-two buckets: bucket 0 holds the
//! value 0 and bucket `b` (1 ≤ b ≤ 64) holds every value whose highest set
//! bit is bit `b-1`, i.e. the range `[2^(b-1), 2^b - 1]`. The bucket of a
//! value is therefore `64 - v.leading_zeros()` — one subtraction, no search
//! — and two histograms over the same scheme merge by adding their buckets,
//! exactly like `HierarchyStats::merge`. Quantiles are resolved to a
//! bucket's upper bound, so they are conservative (never under-report a
//! latency tail) and stable under merging.

/// Number of fixed buckets (value 0, plus one per possible bit width).
pub const N_BUCKETS: usize = 65;

/// A mergeable log-scale histogram of `u64` samples (cycles, nanoseconds).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; N_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros`.
pub fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Inclusive upper bound of a bucket (`u64::MAX` for the last one).
pub fn bucket_upper_bound(b: usize) -> u64 {
    assert!(b < N_BUCKETS, "bucket out of range");
    if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; N_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Records a non-negative `f64` sample, rounded to the nearest integer
    /// unit. Non-finite and negative samples are dropped (mirroring
    /// `Cdf::new`, which drops non-finite latencies).
    pub fn observe_f64(&mut self, v: f64) {
        if v.is_finite() && v >= 0.0 {
            self.observe(v.round() as u64);
        }
    }

    /// Adds every sample of `other` into `self` (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (b, &c) in other.buckets.iter().enumerate() {
            self.buckets[b] += c;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Mean of recorded samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `(bucket, count)` pairs of every non-empty bucket, in bucket
    /// order.
    pub fn nonzero_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| (b, c))
            .collect()
    }

    /// The `p`-quantile, resolved to the containing bucket's upper bound
    /// (exact for the max bucket via the tracked maximum). `NaN` when
    /// empty; `p` is clamped to `[0, 1]`; a `NaN` `p` yields `NaN`.
    pub fn quantile(&self, p: f64) -> f64 {
        if self.count == 0 || p.is_nan() {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 1.0);
        let rank = ((self.count as f64) * p).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max bucket's upper bound would overshoot; the tracked
                // maximum is tighter and still conservative.
                return bucket_upper_bound(b).min(self.max) as f64;
            }
        }
        self.max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_u64_range() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 0..N_BUCKETS {
            assert_eq!(bucket_of(bucket_upper_bound(b)), b);
        }
    }

    #[test]
    fn merge_equals_observing_the_union() {
        let samples_a = [0u64, 1, 7, 100, 5_000];
        let samples_b = [3u64, 100, 1 << 40];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for &s in &samples_a {
            a.observe(s);
            both.observe(s);
        }
        for &s in &samples_b {
            b.observe(s);
            both.observe(s);
        }
        a.merge(&b);
        assert_eq!(a, both);
        assert_eq!(a.count(), 8);
        assert_eq!(a.min(), Some(0));
        assert_eq!(a.max(), Some(1 << 40));
    }

    #[test]
    fn quantiles_are_conservative_bucket_upper_bounds() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1000] {
            h.observe(v);
        }
        // p50 falls in bucket_of(20) = 5 → upper bound 31.
        assert_eq!(h.quantile(0.5), 31.0);
        // The tail quantile is capped by the tracked maximum.
        assert_eq!(h.quantile(1.0), 1000.0);
        assert_eq!(h.quantile(0.0), 15.0); // bucket_of(10) = 4 → 15
        assert!(h.quantile(f64::NAN).is_nan());
        assert!(Histogram::new().quantile(0.5).is_nan());
    }

    #[test]
    fn single_sample_quantiles_return_that_sample_region() {
        let mut h = Histogram::new();
        h.observe(42);
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(p), 42.0, "p={p}");
        }
    }
}

//! A minimal, dependency-free JSON document builder.
//!
//! The workspace is offline (no serde); every committed artifact
//! (`TELEMETRY_*.json`, `BENCH_*.json`, experiment summaries) is built
//! through this one writer so the formatting — key order, 2-space
//! indentation, number rendering — is identical everywhere and the
//! `bench-drift` check can diff regenerated output against the committed
//! files without a parser ambiguity.
//!
//! Objects preserve insertion order. `f64` values render via Rust's
//! shortest-roundtrip `Display`; [`Json::fixed`] renders with a fixed
//! number of decimals (the committed-baseline convention). Non-finite
//! floats render as `null`.

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (shortest-roundtrip rendering; non-finite → `null`).
    F64(f64),
    /// A float rendered with a fixed number of decimals.
    Fixed(f64, usize),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A float rendered with `decimals` decimal places.
    pub fn fixed(v: f64, decimals: usize) -> Json {
        Json::Fixed(v, decimals)
    }

    /// Adds (or replaces nothing — keys are not deduplicated) a field on an
    /// object; panics on non-objects.
    pub fn set(&mut self, key: impl Into<String>, value: Json) -> &mut Json {
        match self {
            Json::Obj(fields) => fields.push((key.into(), value)),
            _ => panic!("Json::set on a non-object"),
        }
        self
    }

    /// Builder-style [`Json::set`].
    pub fn with(mut self, key: impl Into<String>, value: Json) -> Json {
        self.set(key, value);
        self
    }

    /// Renders the document pretty-printed (2-space indent, trailing
    /// newline) — the committed-artifact format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => {
                if v.is_finite() {
                    out.push_str(&v.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Fixed(v, d) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:.d$}", d = d));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                // Scalar-only arrays stay on one line (the `[[epoch, v], …]`
                // series read better packed).
                let scalars = items
                    .iter()
                    .all(|i| !matches!(i, Json::Obj(_) | Json::Arr(_)));
                if scalars {
                    out.push('[');
                    for (k, item) in items.iter().enumerate() {
                        if k > 0 {
                            out.push_str(", ");
                        }
                        item.write(out, indent);
                    }
                    out.push(']');
                } else {
                    out.push_str("[\n");
                    for (k, item) in items.iter().enumerate() {
                        push_indent(out, indent + 1);
                        item.write(out, indent + 1);
                        if k + 1 < items.len() {
                            out.push(',');
                        }
                        out.push('\n');
                    }
                    push_indent(out, indent);
                    out.push(']');
                }
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (k, (key, value)) in fields.iter().enumerate() {
                    push_indent(out, indent + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                    if k + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Extracts every numeric leaf of a JSON document produced by this module,
/// as `(dotted.path, value)` pairs in document order — the comparison
/// surface of the `bench-drift` check. Handles exactly the subset this
/// writer emits (objects, arrays, numbers, strings, booleans, null); array
/// elements get a `[i]` path segment.
pub fn numeric_fields(doc: &str) -> Result<Vec<(String, f64)>, String> {
    let mut p = Parser {
        bytes: doc.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    p.skip_ws();
    p.value(&mut String::new(), &mut out)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self, path: &mut String, out: &mut Vec<(String, f64)>) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(path, out),
            Some(b'[') => self.array(path, out),
            Some(b'"') => {
                self.string()?;
                Ok(())
            }
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(_) => {
                let v = self.number()?;
                out.push((path.clone(), v));
                Ok(())
            }
            None => Err("unexpected end of document".into()),
        }
    }

    fn object(&mut self, path: &mut String, out: &mut Vec<(String, f64)>) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let saved = path.len();
            if !path.is_empty() {
                path.push('.');
            }
            path.push_str(&key);
            self.value(path, out)?;
            path.truncate(saved);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, path: &mut String, out: &mut Vec<(String, f64)>) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        let mut i = 0usize;
        loop {
            let saved = path.len();
            path.push_str(&format!("[{i}]"));
            self.value(path, out)?;
            path.truncate(saved);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    i += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        Some(c) => s.push(c as char),
                        None => return Err("truncated escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map_err(|e| format!("bad number at offset {start}: {e}"))
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected '{lit}' at offset {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_reparse_roundtrip_the_numeric_surface() {
        let doc = Json::obj()
            .with("schema", Json::str("test-v1"))
            .with("count", Json::U64(3))
            .with("rate", Json::fixed(2.73151, 4))
            .with("series", Json::Arr(vec![Json::U64(1), Json::F64(2.5)]))
            .with(
                "nested",
                Json::obj()
                    .with("x", Json::I64(-7))
                    .with("none", Json::Null),
            );
        let s = doc.render();
        let fields = numeric_fields(&s).unwrap();
        assert_eq!(
            fields,
            vec![
                ("count".to_string(), 3.0),
                ("rate".to_string(), 2.7315),
                ("series[0]".to_string(), 1.0),
                ("series[1]".to_string(), 2.5),
                ("nested.x".to_string(), -7.0),
            ]
        );
    }

    #[test]
    fn strings_escape_and_nonfinite_floats_render_null() {
        let doc = Json::obj()
            .with("s", Json::str("a\"b\\c\nd"))
            .with("nan", Json::F64(f64::NAN));
        let s = doc.render();
        assert!(s.contains("\"a\\\"b\\\\c\\nd\""));
        assert!(s.contains("\"nan\": null"));
        assert!(numeric_fields(&s).unwrap().is_empty());
    }
}

//! Epoch-indexed runtime telemetry for the CASTAN testbed.
//!
//! A [`Registry`] holds three kinds of named series plus a bounded event
//! trace, all indexed by a monotonically advancing *telemetry epoch*:
//!
//! * **Counters** — monotonic `u64` totals. Each epoch's *delta* is sealed
//!   at the epoch boundary, so both the running total and the per-epoch
//!   rate are available.
//! * **Gauges** — one `f64` observation per epoch (e.g. the busiest core's
//!   dispatch share). The last value set before the boundary wins.
//! * **Histograms** — log-scale fixed-bucket [`Histogram`]s; the current
//!   epoch's histogram is sealed per epoch and merged into a cumulative
//!   one, so per-epoch latency distributions and the whole-run
//!   distribution both come out of one stream of observations.
//!
//! Epochs advance only via [`Registry::seal_epoch`] — the instrumented
//! runtime calls it at its epoch boundaries (every `epoch_packets` input
//! packets in the sharded DUT). Sealing is purely observational: it never
//! drains batches, touches RNGs or charges cycles, which is what keeps a
//! telemetry-enabled run byte-identical to a plain one (pinned in
//! `castan-testbed`).
//!
//! The registry is *opt-in by absence*: the DUTs hold an `Option` of it
//! and the hot path accumulates into plain per-core structs, touching the
//! registry (and allocating names) only at epoch boundaries. With no
//! registry attached, the code path is exactly today's — there is no
//! "disabled mode" to pay for.
//!
//! [`Registry::snapshot_json`] exports everything as a committed-artifact
//! style JSON document (`TELEMETRY_*.json`), built on the dependency-free
//! [`json`] writer. The first consumer of the per-epoch series is the
//! online attack [`detector`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detector;
pub mod events;
pub mod histogram;
pub mod json;

pub use detector::{Alarm, AttackSignature, Baseline, Detector, DetectorConfig};
pub use events::{Event, EventKind, EventTrace};
pub use histogram::Histogram;
pub use json::Json;

use std::collections::BTreeMap;

/// Default event-ring capacity of [`Registry::new`].
pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

/// A monotonic counter series: running total plus sealed per-epoch deltas.
#[derive(Clone, Debug, Default)]
pub struct CounterSeries {
    total: u64,
    current: u64,
    sealed: Vec<(u64, u64)>,
}

impl CounterSeries {
    /// Running total (sealed epochs + the open one).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sealed `(epoch, delta)` pairs, oldest first. Epochs with a zero
    /// delta are omitted.
    pub fn epochs(&self) -> &[(u64, u64)] {
        &self.sealed
    }

    /// The delta sealed for `epoch` (0 when the epoch saw no increments).
    pub fn delta_at(&self, epoch: u64) -> u64 {
        self.sealed
            .iter()
            .find(|(e, _)| *e == epoch)
            .map_or(0, |(_, d)| *d)
    }
}

/// A gauge series: one sealed `f64` per epoch that observed the gauge.
#[derive(Clone, Debug, Default)]
pub struct GaugeSeries {
    current: Option<f64>,
    sealed: Vec<(u64, f64)>,
}

impl GaugeSeries {
    /// Sealed `(epoch, value)` pairs, oldest first.
    pub fn epochs(&self) -> &[(u64, f64)] {
        &self.sealed
    }

    /// The value sealed for `epoch`, if the gauge was set in it.
    pub fn at(&self, epoch: u64) -> Option<f64> {
        self.sealed
            .iter()
            .find(|(e, _)| *e == epoch)
            .map(|(_, v)| *v)
    }

    /// The most recently sealed value.
    pub fn last(&self) -> Option<f64> {
        self.sealed.last().map(|(_, v)| *v)
    }
}

/// A histogram series: cumulative whole-run histogram plus sealed
/// per-epoch histograms.
#[derive(Clone, Debug, Default)]
pub struct HistogramSeries {
    cumulative: Histogram,
    current: Histogram,
    sealed: Vec<(u64, Histogram)>,
}

impl HistogramSeries {
    /// The whole-run histogram (sealed epochs + the open one).
    pub fn cumulative(&self) -> &Histogram {
        &self.cumulative
    }

    /// Sealed `(epoch, histogram)` pairs, oldest first. Epochs with no
    /// observations are omitted.
    pub fn epochs(&self) -> &[(u64, Histogram)] {
        &self.sealed
    }
}

/// The epoch-indexed telemetry registry.
#[derive(Clone, Debug)]
pub struct Registry {
    epoch: u64,
    counters: BTreeMap<String, CounterSeries>,
    gauges: BTreeMap<String, GaugeSeries>,
    histograms: BTreeMap<String, HistogramSeries>,
    events: EventTrace,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// An empty registry with the default event-ring capacity.
    pub fn new() -> Self {
        Registry::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// An empty registry whose event ring holds `capacity` events.
    pub fn with_event_capacity(capacity: usize) -> Self {
        Registry {
            epoch: 0,
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            histograms: BTreeMap::new(),
            events: EventTrace::new(capacity),
        }
    }

    /// The open (not yet sealed) epoch index; sealed epochs are
    /// `0..epoch()`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Adds `delta` to a counter (attributed to the open epoch).
    pub fn count(&mut self, name: &str, delta: u64) {
        let c = entry(&mut self.counters, name);
        c.total += delta;
        c.current += delta;
    }

    /// Sets a gauge for the open epoch (last set before sealing wins).
    pub fn gauge(&mut self, name: &str, value: f64) {
        entry(&mut self.gauges, name).current = Some(value);
    }

    /// Records one histogram sample into the open epoch.
    pub fn observe(&mut self, name: &str, value: u64) {
        let h = entry(&mut self.histograms, name);
        h.current.observe(value);
        h.cumulative.observe(value);
    }

    /// Merges a pre-accumulated histogram into the open epoch — how the
    /// DUTs hand over per-core epoch histograms without per-sample
    /// registry calls on the hot path.
    pub fn merge_histogram(&mut self, name: &str, other: &Histogram) {
        let h = entry(&mut self.histograms, name);
        h.current.merge(other);
        h.cumulative.merge(other);
    }

    /// Appends an event (stamped with the open epoch). When the bounded
    /// ring evicts the oldest event to make room, the eviction is surfaced
    /// as the `dropped_events` counter so snapshots reveal how much of the
    /// event history was lost rather than silently truncating it.
    pub fn event(&mut self, kind: EventKind, detail: impl Into<String>) {
        let before = self.events.dropped();
        self.events.push(self.epoch, kind, detail.into());
        let evicted = self.events.dropped() - before;
        if evicted > 0 {
            self.count("dropped_events", evicted);
        }
    }

    /// Seals the open epoch: every counter's delta, gauge value and
    /// histogram accumulated since the previous boundary becomes the
    /// sealed record of this epoch, and the epoch index advances.
    pub fn seal_epoch(&mut self) {
        let e = self.epoch;
        for c in self.counters.values_mut() {
            if c.current > 0 {
                c.sealed.push((e, c.current));
                c.current = 0;
            }
        }
        for g in self.gauges.values_mut() {
            if let Some(v) = g.current.take() {
                g.sealed.push((e, v));
            }
        }
        for h in self.histograms.values_mut() {
            if h.current.count() > 0 {
                h.sealed.push((e, std::mem::take(&mut h.current)));
            }
        }
        self.epoch += 1;
    }

    /// Looks up a counter series.
    pub fn counter(&self, name: &str) -> Option<&CounterSeries> {
        self.counters.get(name)
    }

    /// A counter's running total (0 when never incremented).
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.get(name).map_or(0, CounterSeries::total)
    }

    /// Looks up a gauge series.
    pub fn gauge_series(&self, name: &str) -> Option<&GaugeSeries> {
        self.gauges.get(name)
    }

    /// A gauge's sealed value at `epoch`.
    pub fn gauge_at(&self, name: &str, epoch: u64) -> Option<f64> {
        self.gauges.get(name).and_then(|g| g.at(epoch))
    }

    /// Looks up a histogram series.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSeries> {
        self.histograms.get(name)
    }

    /// The event trace.
    pub fn events(&self) -> &EventTrace {
        &self.events
    }

    /// Names of all counters, in sorted order.
    pub fn counter_names(&self) -> Vec<&str> {
        self.counters.keys().map(String::as_str).collect()
    }

    /// Serialises the registry as a `castan-telemetry-v1` JSON document:
    /// every counter's total and per-epoch deltas, every gauge series,
    /// every histogram (cumulative buckets + per-epoch count/p50/p99
    /// summaries) and the retained event trace.
    pub fn snapshot_json(&self) -> String {
        let mut counters = Json::obj();
        for (name, c) in &self.counters {
            let series = c
                .sealed
                .iter()
                .map(|&(e, d)| Json::Arr(vec![Json::U64(e), Json::U64(d)]))
                .collect();
            counters.set(
                name,
                Json::obj()
                    .with("total", Json::U64(c.total))
                    .with("epochs", Json::Arr(series)),
            );
        }
        let mut gauges = Json::obj();
        for (name, g) in &self.gauges {
            let series = g
                .sealed
                .iter()
                .map(|&(e, v)| Json::Arr(vec![Json::U64(e), Json::fixed(v, 6)]))
                .collect();
            gauges.set(name, Json::Arr(series));
        }
        let mut histograms = Json::obj();
        for (name, h) in &self.histograms {
            let buckets = h
                .cumulative
                .nonzero_buckets()
                .into_iter()
                .map(|(b, c)| Json::Arr(vec![Json::U64(b as u64), Json::U64(c)]))
                .collect();
            let epochs = h
                .sealed
                .iter()
                .map(|(e, hist)| {
                    Json::obj()
                        .with("epoch", Json::U64(*e))
                        .with("count", Json::U64(hist.count()))
                        .with("p50", Json::fixed(hist.quantile(0.50), 1))
                        .with("p99", Json::fixed(hist.quantile(0.99), 1))
                })
                .collect();
            histograms.set(
                name,
                Json::obj()
                    .with("count", Json::U64(h.cumulative.count()))
                    .with("mean", Json::fixed(h.cumulative.mean(), 2))
                    .with("p50", Json::fixed(h.cumulative.quantile(0.50), 1))
                    .with("p99", Json::fixed(h.cumulative.quantile(0.99), 1))
                    .with("max", h.cumulative.max().map_or(Json::Null, Json::U64))
                    .with("buckets", Json::Arr(buckets))
                    .with("epochs", Json::Arr(epochs)),
            );
        }
        let entries = self
            .events
            .iter()
            .map(|e| {
                Json::obj()
                    .with("seq", Json::U64(e.seq))
                    .with("epoch", Json::U64(e.epoch))
                    .with("kind", Json::str(e.kind.name()))
                    .with("detail", Json::str(e.detail.clone()))
            })
            .collect();
        Json::obj()
            .with("schema", Json::str("castan-telemetry-v1"))
            .with("epochs", Json::U64(self.epoch))
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
            .with(
                "events",
                Json::obj()
                    .with("dropped", Json::U64(self.events.dropped()))
                    .with("entries", Json::Arr(entries)),
            )
            .render()
    }
}

fn entry<'a, T: Default>(map: &'a mut BTreeMap<String, T>, name: &str) -> &'a mut T {
    if !map.contains_key(name) {
        map.insert(name.to_string(), T::default());
    }
    map.get_mut(name).expect("just inserted")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_seal_per_epoch_deltas_and_keep_the_total() {
        let mut r = Registry::new();
        r.count("pkts", 10);
        r.count("pkts", 5);
        r.seal_epoch();
        r.seal_epoch(); // empty epoch: no record
        r.count("pkts", 7);
        r.seal_epoch();
        let c = r.counter("pkts").unwrap();
        assert_eq!(c.total(), 22);
        assert_eq!(c.epochs(), &[(0, 15), (2, 7)]);
        assert_eq!(c.delta_at(1), 0);
        assert_eq!(r.epoch(), 3);
    }

    #[test]
    fn gauges_keep_the_last_value_set_in_the_epoch() {
        let mut r = Registry::new();
        r.gauge("share", 0.5);
        r.gauge("share", 0.9);
        r.seal_epoch();
        r.seal_epoch();
        assert_eq!(r.gauge_at("share", 0), Some(0.9));
        assert_eq!(r.gauge_at("share", 1), None);
        assert_eq!(r.gauge_series("share").unwrap().last(), Some(0.9));
    }

    #[test]
    fn histogram_epochs_merge_into_the_cumulative_view() {
        let mut r = Registry::new();
        r.observe("lat", 100);
        r.seal_epoch();
        let mut batch = Histogram::new();
        batch.observe(200);
        batch.observe(300);
        r.merge_histogram("lat", &batch);
        r.seal_epoch();
        let h = r.histogram("lat").unwrap();
        assert_eq!(h.cumulative().count(), 3);
        assert_eq!(h.epochs().len(), 2);
        assert_eq!(h.epochs()[1].1.count(), 2);
    }

    #[test]
    fn dropped_events_surface_as_a_pinned_counter() {
        let mut r = Registry::with_event_capacity(2);
        for i in 0..5 {
            r.event(EventKind::EpochBoundary, format!("e{i}"));
        }
        // Capacity 2, five pushes: exactly three evictions, counted as
        // they happen (not merely readable off the ring).
        assert_eq!(r.counter_total("dropped_events"), 3);
        assert_eq!(r.events().dropped(), 3);
        r.seal_epoch();
        let s = r.snapshot_json();
        let fields = json::numeric_fields(&s).unwrap();
        assert!(fields
            .iter()
            .any(|(k, v)| k == "counters.dropped_events.total" && *v == 3.0));
        // No spurious counter when nothing is evicted.
        let mut quiet = Registry::with_event_capacity(8);
        quiet.event(EventKind::EpochBoundary, "only");
        assert_eq!(quiet.counter_total("dropped_events"), 0);
        assert!(quiet.counter("dropped_events").is_none());
    }

    #[test]
    fn snapshot_is_valid_json_with_the_expected_schema() {
        let mut r = Registry::with_event_capacity(2);
        r.count("pkts", 3);
        r.gauge("share", 0.25);
        r.observe("lat", 1_000);
        r.event(EventKind::EpochBoundary, "e0");
        r.seal_epoch();
        let s = r.snapshot_json();
        assert!(s.contains("\"castan-telemetry-v1\""));
        assert!(s.contains("\"pkts\""));
        // The numeric surface parses back through the drift-check parser.
        let fields = json::numeric_fields(&s).unwrap();
        assert!(fields
            .iter()
            .any(|(k, v)| k == "counters.pkts.total" && *v == 3.0));
    }
}

//! The chained datapath: runs every stage of an [`NfChain`] per packet on
//! one shared simulated cache hierarchy.
//!
//! This is deliberately *not* "measure each NF alone and add the numbers":
//! all stages execute on the same [`CpuModel`] (same L1/L2/L3, same page
//! table), with each stage's data structures placed in a disjoint slice of
//! the address space (`stage_index * STAGE_ADDR_STRIDE`). Stages therefore
//! evict each other's lines from the shared L3 exactly as co-located NFs on
//! a real core do, and the end-to-end cost of a chain differs from the sum
//! of its stages measured in isolation.
//!
//! Counter accounting: per packet, each stage's retired instructions and
//! memory/cycle costs are recorded separately ([`ChainMeasurement::per_stage`]);
//! the end-to-end counters are their exact sum plus one per-packet
//! forwarding overhead (`FORWARDING_OVERHEAD_*`) — the chain runs in a
//! single process on the DUT, so the DPDK/NIC path is paid once per packet,
//! not once per stage.

use castan_chain::{NfChain, StageHandoff};
use castan_ir::{DataMemory, ExecSink, Interpreter, RunLimits};
use castan_mem::{HierarchyConfig, MemoryHierarchy};
use castan_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cpu::{CpuModel, PacketCounters};
use crate::dut::{Measurement, MeasurementConfig};
use crate::{
    FORWARDING_OVERHEAD_CYCLES, FORWARDING_OVERHEAD_INSTRUCTIONS, FORWARDING_OVERHEAD_MISSES,
    WIRE_LATENCY_NS,
};

/// An [`ExecSink`] adapter that shifts every cache access by a stage's base
/// address before handing it to the shared CPU model. The stage's own
/// [`DataMemory`] still operates on stage-local addresses; only the cache
/// hierarchy sees the shifted view.
struct OffsetSink<'a> {
    base: u64,
    cpu: &'a mut CpuModel,
}

impl ExecSink for OffsetSink<'_> {
    fn retire(&mut self, class: castan_ir::CostClass) {
        self.cpu.retire(class);
    }

    fn mem_access(&mut self, addr: u64, width: u64, is_write: bool) {
        self.cpu.mem_access(self.base + addr, width, is_write);
    }
}

/// Everything measured from one chained workload run.
#[derive(Clone, Debug)]
pub struct ChainMeasurement {
    /// End-to-end latency samples in nanoseconds (one per measured packet
    /// that traversed the full chain).
    pub latency_ns: Vec<f64>,
    /// End-to-end per-packet counters (sum over stages + forwarding
    /// overhead).
    pub end_to_end: Vec<PacketCounters>,
    /// Per-stage per-packet counters: `per_stage[s][i]` is stage `s`'s cost
    /// for measured packet `i`. Stages after a drop record zeroed counters
    /// for that packet.
    pub per_stage: Vec<Vec<PacketCounters>>,
    /// Per-packet DUT service time in nanoseconds (all stages).
    pub service_ns: Vec<f64>,
    /// Packets dropped mid-chain during the measured window.
    pub dropped: usize,
}

impl ChainMeasurement {
    /// Median end-to-end cycles per packet.
    pub fn median_cycles(&self) -> f64 {
        crate::stats::median_u64(&self.end_to_end.iter().map(|c| c.cycles).collect::<Vec<_>>())
    }

    /// Median end-to-end instructions per packet.
    pub fn median_instructions(&self) -> f64 {
        crate::stats::median_u64(
            &self
                .end_to_end
                .iter()
                .map(|c| c.instructions)
                .collect::<Vec<_>>(),
        )
    }

    /// Median end-to-end L3 misses per packet.
    pub fn median_l3_misses(&self) -> f64 {
        crate::stats::median_u64(
            &self
                .end_to_end
                .iter()
                .map(|c| c.l3_misses)
                .collect::<Vec<_>>(),
        )
    }

    /// Median latency in nanoseconds.
    pub fn median_latency_ns(&self) -> f64 {
        crate::stats::Cdf::new(self.latency_ns.clone()).median()
    }

    /// Median cycles of one stage.
    pub fn stage_median_cycles(&self, stage: usize) -> f64 {
        crate::stats::median_u64(
            &self.per_stage[stage]
                .iter()
                .map(|c| c.cycles)
                .collect::<Vec<_>>(),
        )
    }

    /// Median instructions of one stage.
    pub fn stage_median_instructions(&self, stage: usize) -> f64 {
        crate::stats::median_u64(
            &self.per_stage[stage]
                .iter()
                .map(|c| c.instructions)
                .collect::<Vec<_>>(),
        )
    }

    /// A [`Measurement`] view of the end-to-end numbers, so the existing
    /// throughput search and CDF tooling apply to chains unchanged.
    pub fn as_measurement(&self) -> Measurement {
        Measurement {
            latency_ns: self.latency_ns.clone(),
            counters: self.end_to_end.clone(),
            service_ns: self.service_ns.clone(),
        }
    }
}

/// The device under test running a full chain.
pub struct ChainDut {
    chain: NfChain,
    cpu: CpuModel,
    mems: Vec<DataMemory>,
    handoffs: Vec<Box<dyn StageHandoff>>,
    limits: RunLimits,
}

impl ChainDut {
    /// Boots a DUT running `chain` on the Xeon E5-2667v2 profile.
    pub fn new(chain: NfChain, cfg: &MeasurementConfig) -> Self {
        let hierarchy = MemoryHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), cfg.boot_seed);
        let mems = chain
            .stages
            .iter()
            .map(|s| s.nf.initial_memory.clone())
            .collect();
        let handoffs = chain.handoffs();
        ChainDut {
            chain,
            cpu: CpuModel::new(hierarchy),
            mems,
            handoffs,
            limits: RunLimits::default(),
        }
    }

    /// The chain this DUT runs.
    pub fn chain(&self) -> &NfChain {
        &self.chain
    }

    /// Replays a workload through the whole chain and measures it. Each call
    /// starts from freshly initialised stages and a cold cache; state then
    /// persists across the run, exactly like [`crate::dut::Dut::run`].
    // The stage loop indexes `self.*` per field because `self.chain` is
    // borrowed while `self.mems`/`self.cpu` are mutated.
    #[allow(clippy::needless_range_loop)]
    pub fn run(&mut self, workload: &Workload, cfg: &MeasurementConfig) -> ChainMeasurement {
        assert!(!workload.is_empty(), "cannot replay an empty workload");
        for (mem, stage) in self.mems.iter_mut().zip(&self.chain.stages) {
            *mem = stage.nf.initial_memory.clone();
        }
        for h in &mut self.handoffs {
            h.reset();
        }
        self.cpu.flush_caches();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let clock_ghz = self.cpu.clock_hz() as f64 / 1e9;
        let n_stages = self.chain.len();

        let mut latency_ns = Vec::new();
        let mut end_to_end = Vec::new();
        let mut per_stage: Vec<Vec<PacketCounters>> = vec![Vec::new(); n_stages];
        let mut service_ns = Vec::new();
        let mut dropped = 0usize;

        for i in 0..cfg.total_packets {
            let mut pkt = workload.packets[i % workload.packets.len()];
            let mut stage_counters = vec![PacketCounters::default(); n_stages];
            let mut total = PacketCounters::default();
            let mut was_dropped = false;

            for s in 0..n_stages {
                let stage = &self.chain.stages[s];
                let interp =
                    Interpreter::new(&stage.nf.program, &stage.nf.natives).with_limits(self.limits);
                self.cpu.begin_packet();
                let verdict = {
                    let mut sink = OffsetSink {
                        base: stage.addr_base,
                        cpu: &mut self.cpu,
                    };
                    interp
                        .run_packet(&mut self.mems[s], &pkt, &mut sink)
                        .expect("stage execution failed on the chain DUT")
                        .return_value
                        .unwrap_or(castan_nf::layout::VERDICT_DROP)
                };
                let c = self.cpu.packet_counters();
                stage_counters[s] = c;
                total.cycles += c.cycles;
                total.instructions += c.instructions;
                total.loads += c.loads;
                total.stores += c.stores;
                total.l3_misses += c.l3_misses;

                match self.handoffs[s].apply(&pkt, verdict) {
                    Some(next) => pkt = next,
                    None => {
                        was_dropped = true;
                        break;
                    }
                }
            }

            total.cycles += FORWARDING_OVERHEAD_CYCLES;
            total.instructions += FORWARDING_OVERHEAD_INSTRUCTIONS;
            total.l3_misses += FORWARDING_OVERHEAD_MISSES;

            if i < cfg.warmup_packets {
                continue;
            }
            if was_dropped {
                dropped += 1;
            }
            for (s, c) in stage_counters.into_iter().enumerate() {
                per_stage[s].push(c);
            }
            let service = total.cycles as f64 / clock_ghz; // ns
            let base_jitter: f64 = rng.random_range(0.0..60.0);
            let tail: f64 = if rng.random_bool(0.02) {
                rng.random_range(100.0..400.0)
            } else {
                0.0
            };
            latency_ns.push(WIRE_LATENCY_NS + service + base_jitter + tail);
            service_ns.push(service);
            end_to_end.push(total);
        }

        ChainMeasurement {
            latency_ns,
            end_to_end,
            per_stage,
            service_ns,
            dropped,
        }
    }
}

/// Convenience: measure one chain under one workload with a fresh DUT.
pub fn measure_chain(
    chain: &NfChain,
    workload: &Workload,
    cfg: &MeasurementConfig,
) -> ChainMeasurement {
    let mut dut = ChainDut::new(chain.clone(), cfg);
    dut.run(workload, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::measure;
    use castan_chain::{chain_by_id, ChainId};
    use castan_nf::{nf_by_id, NfId};
    use castan_workload::{generic_chain_workload, generic_workload, WorkloadConfig, WorkloadKind};

    fn quick() -> MeasurementConfig {
        MeasurementConfig::quick()
    }

    #[test]
    fn end_to_end_counters_are_the_stage_sum_plus_one_overhead() {
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.005),
        );
        let m = measure_chain(&chain, &wl, &quick());
        assert_eq!(m.per_stage.len(), 2);
        for (i, total) in m.end_to_end.iter().enumerate() {
            let sum_instr: u64 = m.per_stage.iter().map(|s| s[i].instructions).sum();
            let sum_cycles: u64 = m.per_stage.iter().map(|s| s[i].cycles).sum();
            assert_eq!(
                total.instructions,
                sum_instr + FORWARDING_OVERHEAD_INSTRUCTIONS
            );
            assert_eq!(total.cycles, sum_cycles + FORWARDING_OVERHEAD_CYCLES);
        }
    }

    #[test]
    fn chain_of_one_nop_matches_the_single_nf_dut() {
        let chain = NfChain::new("nop1", vec![nf_by_id(NfId::Nop)]);
        let nf = nf_by_id(NfId::Nop);
        let wl = generic_workload(&nf, WorkloadKind::OnePacket, &WorkloadConfig::scaled(0.01));
        let cfg = quick();
        let m_chain = measure_chain(&chain, &wl, &cfg);
        let m_single = measure(&nf, &wl, &cfg);
        // Identical programs, identical hierarchy seed, identical overhead:
        // the counter streams must agree exactly.
        assert_eq!(m_chain.end_to_end.len(), m_single.counters.len());
        assert_eq!(m_chain.end_to_end, m_single.counters);
        assert_eq!(m_chain.dropped, 0);
    }

    #[test]
    fn stages_share_the_l3_so_chain_misses_exceed_isolated_sums() {
        // A destination-diverse workload through nat→lpm: the trie's pool
        // and the NAT's buckets/pool now compete for the same L3.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.003),
        );
        let cfg = quick();
        let m = measure_chain(&chain, &wl, &cfg);
        assert!(m.median_cycles() > 0.0);
        // Each stage contributes real work (no stage sits idle).
        assert!(m.stage_median_instructions(0) > 5.0);
        assert!(m.stage_median_instructions(1) > 5.0);
        // End-to-end instructions exceed either stage alone.
        assert!(m.median_instructions() > m.stage_median_instructions(0));
        assert!(m.median_instructions() > m.stage_median_instructions(1));
    }

    #[test]
    fn nat_drops_stray_return_traffic_mid_chain() {
        use castan_packet::{Ipv4Addr, PacketBuilder};
        let chain = chain_by_id(ChainId::NatLpm);
        let stray = PacketBuilder::new()
            .src_ip(Ipv4Addr::new(8, 8, 8, 8))
            .dst_ip(Ipv4Addr(castan_nf::layout::NAT_EXTERNAL_IP))
            .dst_port(40_000)
            .build();
        let wl = castan_workload::Workload {
            kind: WorkloadKind::Manual,
            packets: vec![stray],
        };
        let cfg = MeasurementConfig {
            total_packets: 100,
            warmup_packets: 10,
            ..MeasurementConfig::quick()
        };
        let m = measure_chain(&chain, &wl, &cfg);
        assert_eq!(m.dropped, 90, "every measured packet is dropped by the NAT");
        // The LPM stage never ran: its counters are all zero.
        assert_eq!(m.stage_median_instructions(1), 0.0);
    }
}

//! The DUT's CPU cost model: an [`ExecSink`] that charges instruction base
//! costs and routes every data-memory access through the simulated cache
//! hierarchy, accumulating the per-packet counters the evaluation reports
//! (reference cycles, instructions retired, L3 misses).

use castan_ir::{CostClass, ExecSink};
use castan_mem::{AccessKind, MemoryHierarchy, MultiCoreHierarchy};

/// Per-packet performance counters (what libPAPI reads out in §5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacketCounters {
    /// Reference cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
}

/// The CPU model: owns the cache hierarchy and the in-flight counters.
#[derive(Debug)]
pub struct CpuModel {
    hierarchy: MemoryHierarchy,
    current: PacketCounters,
}

impl CpuModel {
    /// Creates a CPU model around a memory hierarchy.
    pub fn new(hierarchy: MemoryHierarchy) -> Self {
        CpuModel {
            hierarchy,
            current: PacketCounters::default(),
        }
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.hierarchy.config().clock_hz
    }

    /// Starts a new packet: clears the per-packet counters (cache state is
    /// deliberately retained — that is the whole point of the measurement).
    pub fn begin_packet(&mut self) {
        self.current = PacketCounters::default();
    }

    /// Counters accumulated since `begin_packet`.
    pub fn packet_counters(&self) -> PacketCounters {
        self.current
    }

    /// Flushes the caches (used between workload runs, like rebooting the
    /// DUT between experiments).
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush_caches();
    }

    /// Access to the underlying hierarchy (read-only statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }
}

impl ExecSink for CpuModel {
    fn retire(&mut self, class: CostClass) {
        self.current.instructions += 1;
        self.current.cycles += class.base_cycles();
    }

    fn mem_access(&mut self, addr: u64, _width: u64, is_write: bool) {
        if is_write {
            self.current.stores += 1;
        } else {
            self.current.loads += 1;
        }
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let outcome = self.hierarchy.access(addr, kind);
        self.current.cycles += outcome.cycles;
        if outcome.served_by == castan_mem::hierarchy::ServedBy::Dram {
            self.current.l3_misses += 1;
        }
    }
}

/// The multi-core CPU model: one [`MultiCoreHierarchy`] shared by N
/// simulated cores, with the same per-packet counter discipline as the
/// single-core [`CpuModel`]. The simulation executes one packet at a time
/// (cores interleave at packet granularity), so a single in-flight counter
/// block suffices; per-core attribution happens in the hierarchy (memory
/// statistics) and in the sharded DUT (packet counters).
#[derive(Debug)]
pub struct MultiCoreCpu {
    hierarchy: MultiCoreHierarchy,
    current: PacketCounters,
}

impl MultiCoreCpu {
    /// Creates a multi-core CPU model around a shared hierarchy.
    pub fn new(hierarchy: MultiCoreHierarchy) -> Self {
        MultiCoreCpu {
            hierarchy,
            current: PacketCounters::default(),
        }
    }

    /// Clock frequency in Hz (all cores share one clock domain).
    pub fn clock_hz(&self) -> u64 {
        self.hierarchy.config().clock_hz
    }

    /// Number of simulated cores.
    pub fn n_cores(&self) -> usize {
        self.hierarchy.n_cores()
    }

    /// Starts a new packet: clears the per-packet counters (cache state is
    /// deliberately retained).
    pub fn begin_packet(&mut self) {
        self.current = PacketCounters::default();
    }

    /// Counters accumulated since `begin_packet`.
    pub fn packet_counters(&self) -> PacketCounters {
        self.current
    }

    /// Flushes every cache level of every core.
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush_caches();
    }

    /// Resets the hierarchy's per-core statistics.
    pub fn reset_stats(&mut self) {
        self.hierarchy.reset_stats();
    }

    /// Access to the underlying hierarchy (read-only statistics).
    pub fn hierarchy(&self) -> &MultiCoreHierarchy {
        &self.hierarchy
    }

    /// Mutable access to the underlying hierarchy — what the sharded DUT's
    /// page premapping, line-heat profiling and noisy-neighbour replay go
    /// through (accesses issued here are charged to their core exactly like
    /// packet work, but bypass the per-packet counters).
    pub fn hierarchy_mut(&mut self) -> &mut MultiCoreHierarchy {
        &mut self.hierarchy
    }

    /// An [`ExecSink`] view bound to one core and one address-space base:
    /// instruction costs accrue to the shared per-packet counters, memory
    /// accesses are shifted by `base` and charged to `core` in the shared
    /// hierarchy.
    pub fn sink(&mut self, core: usize, base: u64) -> CoreSink<'_> {
        debug_assert!(core < self.hierarchy.n_cores());
        CoreSink {
            cpu: self,
            core,
            base,
        }
    }
}

/// The per-(core, stage) execution sink of a [`MultiCoreCpu`].
pub struct CoreSink<'a> {
    cpu: &'a mut MultiCoreCpu,
    core: usize,
    base: u64,
}

impl ExecSink for CoreSink<'_> {
    fn retire(&mut self, class: CostClass) {
        self.cpu.current.instructions += 1;
        self.cpu.current.cycles += class.base_cycles();
    }

    fn mem_access(&mut self, addr: u64, _width: u64, is_write: bool) {
        if is_write {
            self.cpu.current.stores += 1;
        } else {
            self.cpu.current.loads += 1;
        }
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let outcome = self.cpu.hierarchy.access(self.core, self.base + addr, kind);
        self.cpu.current.cycles += outcome.cycles;
        if outcome.served_by == castan_mem::hierarchy::ServedBy::Dram {
            self.cpu.current.l3_misses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_mem::HierarchyConfig;

    #[test]
    fn multicore_sinks_charge_the_issuing_core() {
        let hierarchy = MultiCoreHierarchy::new(HierarchyConfig::tiny_for_tests(), 1, 2);
        let mut cpu = MultiCoreCpu::new(hierarchy);
        cpu.begin_packet();
        cpu.sink(0, 0).mem_access(0x1000, 8, false);
        let c0 = cpu.packet_counters();
        assert_eq!(c0.l3_misses, 1, "cold access on core 0 goes to DRAM");
        cpu.begin_packet();
        cpu.sink(1, 0).mem_access(0x1000, 8, false);
        let c1 = cpu.packet_counters();
        assert_eq!(c1.l3_misses, 0, "core 1 hits the shared L3");
        assert_eq!(cpu.hierarchy().core_stats(0).accesses, 1);
        assert_eq!(cpu.hierarchy().core_stats(1).accesses, 1);
        assert_eq!(cpu.hierarchy().aggregate_stats().l3_misses, 1);
    }

    #[test]
    fn sink_base_offsets_separate_address_spaces() {
        let hierarchy = MultiCoreHierarchy::new(HierarchyConfig::tiny_for_tests(), 1, 2);
        let mut cpu = MultiCoreCpu::new(hierarchy);
        cpu.begin_packet();
        cpu.sink(0, 0).mem_access(0x2000, 8, false);
        cpu.begin_packet();
        // Same stage-local address, different base: a distinct line.
        cpu.sink(1, 1 << 30).mem_access(0x2000, 8, false);
        assert_eq!(cpu.packet_counters().l3_misses, 1, "offset access is cold");
    }

    #[test]
    fn counters_accumulate_and_reset() {
        let mut cpu = CpuModel::new(MemoryHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), 1));
        cpu.begin_packet();
        cpu.retire(CostClass::Alu);
        cpu.retire(CostClass::Load);
        cpu.mem_access(0x5000_0000, 8, false);
        let c = cpu.packet_counters();
        assert_eq!(c.instructions, 2);
        assert_eq!(c.loads, 1);
        assert_eq!(c.l3_misses, 1, "cold access goes to DRAM");
        assert!(c.cycles >= 200);

        cpu.begin_packet();
        cpu.mem_access(0x5000_0000, 8, false);
        let c2 = cpu.packet_counters();
        assert_eq!(c2.l3_misses, 0, "cache state persists across packets");
        assert!(c2.cycles < c.cycles);
        assert_eq!(cpu.clock_hz(), 3_300_000_000);
    }
}

//! The DUT's CPU cost model: an [`ExecSink`] that charges instruction base
//! costs and routes every data-memory access through the simulated cache
//! hierarchy, accumulating the per-packet counters the evaluation reports
//! (reference cycles, instructions retired, L3 misses).

use castan_ir::{CostClass, ExecSink};
use castan_mem::{AccessKind, MemoryHierarchy};

/// Per-packet performance counters (what libPAPI reads out in §5.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PacketCounters {
    /// Reference cycles consumed.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
    /// L3 misses (DRAM accesses).
    pub l3_misses: u64,
}

/// The CPU model: owns the cache hierarchy and the in-flight counters.
#[derive(Debug)]
pub struct CpuModel {
    hierarchy: MemoryHierarchy,
    current: PacketCounters,
}

impl CpuModel {
    /// Creates a CPU model around a memory hierarchy.
    pub fn new(hierarchy: MemoryHierarchy) -> Self {
        CpuModel {
            hierarchy,
            current: PacketCounters::default(),
        }
    }

    /// Clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.hierarchy.config().clock_hz
    }

    /// Starts a new packet: clears the per-packet counters (cache state is
    /// deliberately retained — that is the whole point of the measurement).
    pub fn begin_packet(&mut self) {
        self.current = PacketCounters::default();
    }

    /// Counters accumulated since `begin_packet`.
    pub fn packet_counters(&self) -> PacketCounters {
        self.current
    }

    /// Flushes the caches (used between workload runs, like rebooting the
    /// DUT between experiments).
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush_caches();
    }

    /// Access to the underlying hierarchy (read-only statistics).
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }
}

impl ExecSink for CpuModel {
    fn retire(&mut self, class: CostClass) {
        self.current.instructions += 1;
        self.current.cycles += class.base_cycles();
    }

    fn mem_access(&mut self, addr: u64, _width: u64, is_write: bool) {
        if is_write {
            self.current.stores += 1;
        } else {
            self.current.loads += 1;
        }
        let kind = if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let outcome = self.hierarchy.access(addr, kind);
        self.current.cycles += outcome.cycles;
        if outcome.served_by == castan_mem::hierarchy::ServedBy::Dram {
            self.current.l3_misses += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_mem::HierarchyConfig;

    #[test]
    fn counters_accumulate_and_reset() {
        let mut cpu = CpuModel::new(MemoryHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), 1));
        cpu.begin_packet();
        cpu.retire(CostClass::Alu);
        cpu.retire(CostClass::Load);
        cpu.mem_access(0x5000_0000, 8, false);
        let c = cpu.packet_counters();
        assert_eq!(c.instructions, 2);
        assert_eq!(c.loads, 1);
        assert_eq!(c.l3_misses, 1, "cold access goes to DRAM");
        assert!(c.cycles >= 200);

        cpu.begin_packet();
        cpu.mem_access(0x5000_0000, 8, false);
        let c2 = cpu.packet_counters();
        assert_eq!(c2.l3_misses, 0, "cache state persists across packets");
        assert!(c2.cycles < c.cycles);
        assert_eq!(cpu.clock_hz(), 3_300_000_000);
    }
}

//! The device under test: replays a workload through an NF on the simulated
//! CPU and collects per-packet latency samples and performance counters.

use castan_ir::{DataMemory, Interpreter, RunLimits};
use castan_mem::{HierarchyConfig, MemoryHierarchy};
use castan_nf::NfSpec;
use castan_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cpu::{CpuModel, PacketCounters};
use crate::stats::Cdf;
use crate::{
    FORWARDING_OVERHEAD_CYCLES, FORWARDING_OVERHEAD_INSTRUCTIONS, FORWARDING_OVERHEAD_MISSES,
    WIRE_LATENCY_NS,
};

/// Measurement parameters.
#[derive(Clone, Copy, Debug)]
pub struct MeasurementConfig {
    /// Total packets to run through the DUT (the trace is replayed in a loop
    /// if it is shorter, exactly like the paper's 20-second replays).
    pub total_packets: usize,
    /// Packets at the start excluded from the reported statistics (cache
    /// warm-up; the hardware testbed's first seconds play the same role).
    pub warmup_packets: usize,
    /// Measurement-noise seed (latency jitter of the NIC/driver path).
    pub seed: u64,
    /// Boot seed of the DUT's page table.
    pub boot_seed: u64,
}

impl Default for MeasurementConfig {
    fn default() -> Self {
        MeasurementConfig {
            total_packets: 60_000,
            warmup_packets: 5_000,
            seed: 7,
            boot_seed: 1,
        }
    }
}

impl MeasurementConfig {
    /// A small configuration for tests.
    pub fn quick() -> Self {
        MeasurementConfig {
            total_packets: 3_000,
            warmup_packets: 300,
            ..Default::default()
        }
    }
}

/// Everything measured from one workload run.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// End-to-end latency samples in nanoseconds.
    pub latency_ns: Vec<f64>,
    /// Per-packet counters (cycles, instructions, loads/stores, L3 misses).
    pub counters: Vec<PacketCounters>,
    /// Per-packet DUT service time in nanoseconds (input to the throughput
    /// search).
    pub service_ns: Vec<f64>,
}

impl Measurement {
    /// Latency CDF.
    pub fn latency_cdf(&self) -> Cdf {
        Cdf::new(self.latency_ns.clone())
    }

    /// Reference-cycles CDF.
    pub fn cycles_cdf(&self) -> Cdf {
        Cdf::new(self.counters.iter().map(|c| c.cycles as f64).collect())
    }

    /// Median instructions retired per packet.
    pub fn median_instructions(&self) -> f64 {
        crate::stats::median_u64(
            &self
                .counters
                .iter()
                .map(|c| c.instructions)
                .collect::<Vec<_>>(),
        )
    }

    /// Median L3 misses per packet.
    pub fn median_l3_misses(&self) -> f64 {
        crate::stats::median_u64(
            &self
                .counters
                .iter()
                .map(|c| c.l3_misses)
                .collect::<Vec<_>>(),
        )
    }

    /// Median latency in nanoseconds.
    pub fn median_latency_ns(&self) -> f64 {
        self.latency_cdf().median()
    }
}

/// The device under test.
pub struct Dut {
    nf: NfSpec,
    cpu: CpuModel,
    memory: DataMemory,
    limits: RunLimits,
}

impl Dut {
    /// Boots a DUT running the given NF on the Xeon E5-2667v2 profile.
    pub fn new(nf: NfSpec, cfg: &MeasurementConfig) -> Self {
        let hierarchy = MemoryHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), cfg.boot_seed);
        let memory = nf.initial_memory.clone();
        Dut {
            nf,
            cpu: CpuModel::new(hierarchy),
            memory,
            limits: RunLimits::default(),
        }
    }

    /// The NF this DUT runs.
    pub fn nf(&self) -> &NfSpec {
        &self.nf
    }

    /// Replays a workload and measures it. The NF's state persists across
    /// the whole run (stateful NFs accumulate flow-table entries exactly as
    /// on the real testbed); each call starts from a freshly initialised NF
    /// and a cold cache.
    pub fn run(&mut self, workload: &Workload, cfg: &MeasurementConfig) -> Measurement {
        assert!(!workload.is_empty(), "cannot replay an empty workload");
        self.memory = self.nf.initial_memory.clone();
        self.cpu.flush_caches();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let clock_ghz = self.cpu.clock_hz() as f64 / 1e9;
        let interp = Interpreter::new(&self.nf.program, &self.nf.natives).with_limits(self.limits);

        let mut latency_ns = Vec::new();
        let mut counters = Vec::new();
        let mut service_ns = Vec::new();

        for i in 0..cfg.total_packets {
            let pkt = &workload.packets[i % workload.packets.len()];
            self.cpu.begin_packet();
            let _ = interp
                .run_packet(&mut self.memory, pkt, &mut self.cpu)
                .expect("NF execution failed on the DUT");
            let mut c = self.cpu.packet_counters();
            c.cycles += FORWARDING_OVERHEAD_CYCLES;
            c.instructions += FORWARDING_OVERHEAD_INSTRUCTIONS;
            c.l3_misses += FORWARDING_OVERHEAD_MISSES;

            if i < cfg.warmup_packets {
                continue;
            }
            // Service time in nanoseconds.
            let service = c.cycles as f64 / clock_ghz;
            // End-to-end latency: wire/NIC path plus DUT service time plus a
            // small amount of measurement noise with an occasional longer
            // tail (interrupts, PCIe jitter) so the CDFs have realistic
            // spread.
            let base_jitter: f64 = rng.random_range(0.0..60.0);
            let tail: f64 = if rng.random_bool(0.02) {
                rng.random_range(100.0..400.0)
            } else {
                0.0
            };
            latency_ns.push(WIRE_LATENCY_NS + service + base_jitter + tail);
            service_ns.push(service);
            counters.push(c);
        }

        Measurement {
            latency_ns,
            counters,
            service_ns,
        }
    }
}

/// Convenience: measure one NF under one workload with a fresh DUT.
pub fn measure(nf: &NfSpec, workload: &Workload, cfg: &MeasurementConfig) -> Measurement {
    let mut dut = Dut::new(nf.clone(), cfg);
    dut.run(workload, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_nf::{nf_by_id, NfId};
    use castan_workload::{generic_workload, WorkloadConfig, WorkloadKind};

    fn quick() -> MeasurementConfig {
        MeasurementConfig::quick()
    }

    #[test]
    fn nop_latency_sits_at_the_wire_baseline() {
        let nf = nf_by_id(NfId::Nop);
        let w = generic_workload(&nf, WorkloadKind::OnePacket, &WorkloadConfig::scaled(0.01));
        let m = measure(&nf, &w, &quick());
        let median = m.median_latency_ns();
        assert!(
            (4_000.0..4_800.0).contains(&median),
            "NOP median latency should sit near the wire baseline, got {median}"
        );
        assert_eq!(m.median_instructions(), 271.0);
        assert_eq!(m.median_l3_misses(), 1.0);
    }

    #[test]
    fn unirand_hurts_the_direct_lookup_lpm_more_than_zipf() {
        // The core result of Fig. 4: uniform traffic over the 512 MiB table
        // misses the L3 while Zipfian traffic does not.
        let nf = nf_by_id(NfId::LpmDirect1);
        let wl_cfg = WorkloadConfig::scaled(0.02);
        let zipf = generic_workload(&nf, WorkloadKind::Zipfian, &wl_cfg);
        let uni = generic_workload(&nf, WorkloadKind::UniRand, &wl_cfg);
        let cfg = quick();
        let m_zipf = measure(&nf, &zipf, &cfg);
        let m_uni = measure(&nf, &uni, &cfg);
        assert!(
            m_uni.median_l3_misses() > m_zipf.median_l3_misses(),
            "uniform traffic must miss more: {} vs {}",
            m_uni.median_l3_misses(),
            m_zipf.median_l3_misses()
        );
        assert!(m_uni.median_latency_ns() > m_zipf.median_latency_ns());
    }

    #[test]
    fn skewed_manual_workload_hurts_the_unbalanced_tree_nat() {
        let nf = nf_by_id(NfId::NatUnbalancedTree);
        let wl_cfg = WorkloadConfig::scaled(0.01);
        let zipf = generic_workload(&nf, WorkloadKind::Zipfian, &wl_cfg);
        let manual = castan_workload::manual_workload(&nf).unwrap();
        let cfg = quick();
        let m_zipf = measure(&nf, &zipf, &cfg);
        let m_manual = measure(&nf, &manual, &cfg);
        assert!(
            m_manual.median_instructions() > 1.5 * m_zipf.median_instructions(),
            "tree skew should blow up the instruction count: {} vs {}",
            m_manual.median_instructions(),
            m_zipf.median_instructions()
        );
    }
}

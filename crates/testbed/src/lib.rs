//! # castan-testbed
//!
//! The simulated measurement testbed standing in for the paper's hardware
//! setup (§5.1): a device under test (DUT) running one NF on a simulated
//! Xeon E5-2667v2 (CPU cost model + `castan-mem` cache hierarchy), and a
//! traffic generator (TG) that replays workload traces, measures per-packet
//! end-to-end latency against a NOP baseline, derives the maximum
//! throughput at <1 % loss, and reads back the per-packet performance
//! counters (reference cycles, instructions retired, L3 misses).
//!
//! Beyond the paper's single-core setup, [`shard`] scales the DUT out:
//! an RSS dispatcher (`castan-runtime`) flow-hashes packets onto N
//! simulated cores, each running a private chain instance on per-core
//! L1/L2 levels in front of one shared L3
//! ([`castan_mem::MultiCoreHierarchy`]), with batched dispatch and
//! per-core + aggregate measurements.
//!
//! Absolute numbers are calibrated only loosely against the paper's testbed
//! (the NOP forwarding overhead and the 3.3 GHz clock); what the
//! reproduction targets is the *relative* behaviour of workloads per NF —
//! who is slower, by roughly what factor, and why (instructions vs misses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod cpu;
pub mod dut;
pub mod shard;
pub mod stats;
pub mod throughput;

pub use chain::{measure_chain, ChainDut, ChainMeasurement};
pub use cpu::{CoreSink, CpuModel, MultiCoreCpu, PacketCounters};
pub use dut::{measure, Dut, Measurement, MeasurementConfig};
pub use shard::{
    measure_sharded, victim_table, CoreMeasurement, DetectionConfig, DetectionReport,
    MitigationConfig, NeighborReplay, NoisyNeighborDut, NoisyNeighborMeasurement, ShardConfig,
    ShardedDut, ShardedMeasurement, TelemetryConfig, DETECT_POLL_CYCLES, MIGRATION_LINES_PER_FLOW,
    STEAL_BATCH_CYCLES, STEAL_THRESHOLD_CYCLES,
};
pub use stats::Cdf;
pub use throughput::{max_throughput_mpps, ThroughputConfig};

/// Fixed per-packet forwarding overhead (DPDK + driver + NIC) in CPU cycles,
/// calibrated so the NOP NF forwards at ≈3.45 Mpps as in Table 1.
///
/// Decomposed as [`BATCH_DISPATCH_CYCLES`] + [`PACKET_FORWARD_CYCLES`]: the
/// unbatched DUTs pay both per packet (a batch of one), the sharded runtime
/// pays the dispatch component once per batch.
pub const FORWARDING_OVERHEAD_CYCLES: u64 = 950;

/// The dispatch share of [`FORWARDING_OVERHEAD_CYCLES`]: RX-queue doorbell,
/// descriptor refill and RSS-queue bookkeeping, paid once per *batch* by the
/// batched runtime (`castan_testbed::shard`).
pub const BATCH_DISPATCH_CYCLES: u64 = 600;

/// The remaining per-packet share of [`FORWARDING_OVERHEAD_CYCLES`]: header
/// fetch, mbuf handling and TX, paid per packet regardless of batching.
pub const PACKET_FORWARD_CYCLES: u64 = FORWARDING_OVERHEAD_CYCLES - BATCH_DISPATCH_CYCLES;

/// Fixed per-packet overhead in retired instructions (Table 2 reports 271
/// instructions per packet for the NOP).
pub const FORWARDING_OVERHEAD_INSTRUCTIONS: u64 = 270;

/// Fixed per-packet L3 misses of the forwarding path (Table 3: NOP = 1).
pub const FORWARDING_OVERHEAD_MISSES: u64 = 1;

/// Wire, NIC and timestamping latency included in every end-to-end latency
/// sample (the NOP CDF sits around 4.3 µs in Figs. 4–15).
pub const WIRE_LATENCY_NS: f64 = 4_050.0;

//! # castan-testbed
//!
//! The simulated measurement testbed standing in for the paper's hardware
//! setup (§5.1): a device under test (DUT) running one NF on a simulated
//! Xeon E5-2667v2 (CPU cost model + `castan-mem` cache hierarchy), and a
//! traffic generator (TG) that replays workload traces, measures per-packet
//! end-to-end latency against a NOP baseline, derives the maximum
//! throughput at <1 % loss, and reads back the per-packet performance
//! counters (reference cycles, instructions retired, L3 misses).
//!
//! Absolute numbers are calibrated only loosely against the paper's testbed
//! (the NOP forwarding overhead and the 3.3 GHz clock); what the
//! reproduction targets is the *relative* behaviour of workloads per NF —
//! who is slower, by roughly what factor, and why (instructions vs misses).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chain;
pub mod cpu;
pub mod dut;
pub mod stats;
pub mod throughput;

pub use chain::{measure_chain, ChainDut, ChainMeasurement};
pub use cpu::{CpuModel, PacketCounters};
pub use dut::{measure, Dut, Measurement, MeasurementConfig};
pub use stats::Cdf;
pub use throughput::{max_throughput_mpps, ThroughputConfig};

/// Fixed per-packet forwarding overhead (DPDK + driver + NIC) in CPU cycles,
/// calibrated so the NOP NF forwards at ≈3.45 Mpps as in Table 1.
pub const FORWARDING_OVERHEAD_CYCLES: u64 = 950;

/// Fixed per-packet overhead in retired instructions (Table 2 reports 271
/// instructions per packet for the NOP).
pub const FORWARDING_OVERHEAD_INSTRUCTIONS: u64 = 270;

/// Fixed per-packet L3 misses of the forwarding path (Table 3: NOP = 1).
pub const FORWARDING_OVERHEAD_MISSES: u64 = 1;

/// Wire, NIC and timestamping latency included in every end-to-end latency
/// sample (the NOP CDF sits around 4.3 µs in Figs. 4–15).
pub const WIRE_LATENCY_NS: f64 = 4_050.0;

//! The sharded datapath: an RSS dispatcher in front of N simulated cores,
//! each running its own instance of an NF chain, all contending for one
//! shared L3.
//!
//! This is the multi-core analogue of [`ChainDut`](crate::chain::ChainDut):
//! packets are Toeplitz-hashed over their 5-tuple onto per-core receive
//! queues (`castan-runtime`), buffered into batches, and each core executes
//! its batch on private L1/L2 levels in front of the shared last-level
//! cache ([`castan_mem::MultiCoreHierarchy`]). Every core owns a *private*
//! chain instance — its own stage memories, handoff state and address
//! region — so cores never share NF state (exactly the share-nothing
//! RSS deployment model), but they do evict each other's lines from the
//! inclusive L3.
//!
//! **Cost model.** Per packet, each stage's retired instructions and
//! memory cycles are charged through the shared hierarchy as in the
//! chained DUT. The fixed forwarding overhead is split: the per-packet
//! share ([`PACKET_FORWARD_CYCLES`]) is paid by every packet, while the
//! dispatch share ([`BATCH_DISPATCH_CYCLES`]) is paid once per *batch* and
//! distributed exactly over the batch's packets (the first
//! `BATCH_DISPATCH_CYCLES mod n` packets carry the remainder cycle).
//! A 1-core, batch-of-1 sharded DUT therefore reproduces the unbatched
//! [`ChainDut`](crate::chain::ChainDut) byte-for-byte — counters, latency
//! samples and all — which is pinned by a test.
//!
//! **Throughput.** Cores run concurrently, so the aggregate forwarding
//! rate is bounded by the *busiest* core:
//! `aggregate Mpps = measured packets / busy time of the bottleneck core`.
//! Uniform traffic spreads flows evenly and scales near-linearly with the
//! core count; a queue-skew workload (all 5-tuples on one RSS queue)
//! saturates one core while the rest idle, collapsing the aggregate to
//! roughly the single-core rate. That collapse is the adversarial target
//! of `castan-core`'s queue-skew synthesis.
//!
//! **Mitigation.** With a [`MitigationConfig`] the DUT fights back: every
//! `epoch_packets` input packets it drains the in-flight batches, feeds
//! the epoch's per-entry loads to a `castan-runtime::rebalance` policy,
//! and installs the rewritten indirection table (recording the schedule in
//! [`ShardedMeasurement::table_history`]). The optional migration cost
//! model charges every moved flow's state pull through the shared L3 to
//! the destination core, and the optional work-stealing sink lets idle
//! cores execute batches from a core that has fallen far behind —
//! trading flow→core affinity for throughput. The `rss-mitigation`
//! experiment in `castan-experiments` evaluates all of it against static
//! and adaptive queue-skew attackers.

use castan_chain::{NfChain, StageHandoff};
use castan_ir::{DataMemory, Interpreter, RunLimits};
use castan_mem::{HierarchyConfig, HierarchyStats, MultiCoreHierarchy};
use castan_runtime::{rebalanced_table, Batcher, LoadTracker, RebalancePolicy};
use castan_runtime::{RssConfig, RssDispatcher};
use castan_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use castan_packet::Packet;

use crate::cpu::{MultiCoreCpu, PacketCounters};
use crate::dut::{Measurement, MeasurementConfig};
use crate::stats::Cdf;
use crate::{
    BATCH_DISPATCH_CYCLES, FORWARDING_OVERHEAD_INSTRUCTIONS, FORWARDING_OVERHEAD_MISSES,
    PACKET_FORWARD_CYCLES, WIRE_LATENCY_NS,
};

/// Address-space stride between cores. Each core's chain instance occupies
/// `core * CORE_ADDR_STRIDE + stage * STAGE_ADDR_STRIDE`, so distinct cores
/// (and distinct stages within a core) never alias in the shared cache.
/// 512 GiB leaves room for 8 stages of 64 GiB each per core.
pub const CORE_ADDR_STRIDE: u64 = 1 << 39;

const _: () = assert!(CORE_ADDR_STRIDE >= 8 * castan_chain::STAGE_ADDR_STRIDE);

/// Cache lines of per-flow NF state (NAT translation entry, LB assignment,
/// connection bookkeeping) pulled across when a rebalance moves a flow's
/// indirection entry to another core. Each line is priced at the shared-L3
/// hit latency: the state was resident on the old core, so the new core
/// fetches it through the inclusive L3 rather than from DRAM.
pub const MIGRATION_LINES_PER_FLOW: u64 = 8;

/// Fixed cycles a thief core pays per stolen batch: the cross-core ring
/// doorbell plus pulling the victim queue's descriptors and packet headers
/// through the shared L3.
pub const STEAL_BATCH_CYCLES: u64 = 1_200;

/// A batch is stolen only when its home core's accumulated busy time
/// exceeds the idlest core's by this many cycles — enough to never trigger
/// under balanced traffic, and a small fraction of a skewed core's backlog.
pub const STEAL_THRESHOLD_CYCLES: u64 = 50_000;

/// Queue-skew mitigation run by the sharded DUT: epoch-based indirection
/// table rebalancing, optionally with an explicit flow-migration cost
/// model and a work-stealing sink.
#[derive(Clone, Copy, Debug)]
pub struct MitigationConfig {
    /// Epoch length in input packets. At every epoch boundary the in-flight
    /// batches are drained, the rebalance policy sees the epoch's per-entry
    /// loads, and a new indirection table (if any) takes effect.
    pub epoch_packets: usize,
    /// The table rewrite policy.
    pub policy: RebalancePolicy,
    /// Charge the flow-state move of every rebalanced flow: each flow whose
    /// entry changes queues costs the *destination* core
    /// [`MIGRATION_LINES_PER_FLOW`] shared-L3 hits of busy time.
    pub migration_cost: bool,
    /// Enable the work-stealing sink: a full batch whose home core is more
    /// than [`STEAL_THRESHOLD_CYCLES`] busier than the idlest core executes
    /// on that idlest core instead (paying [`STEAL_BATCH_CYCLES`]). This
    /// breaks flow→core affinity — the price real work-stealing runtimes
    /// pay — so it is off unless explicitly requested.
    pub work_stealing: bool,
}

impl MitigationConfig {
    /// Plain epoch rebalancing: no migration cost, no work stealing.
    pub fn rebalance(epoch_packets: usize, policy: RebalancePolicy) -> Self {
        assert!(epoch_packets > 0, "epochs must contain packets");
        MitigationConfig {
            epoch_packets,
            policy,
            migration_cost: false,
            work_stealing: false,
        }
    }

    /// Adds the flow-migration cost model.
    pub fn with_migration_cost(self) -> Self {
        MitigationConfig {
            migration_cost: true,
            ..self
        }
    }

    /// Adds the work-stealing sink.
    pub fn with_work_stealing(self) -> Self {
        MitigationConfig {
            work_stealing: true,
            ..self
        }
    }
}

/// Sharded-runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of simulated cores (= RSS queues).
    pub n_cores: usize,
    /// Packets per dispatch batch.
    pub batch_size: usize,
    /// The NIC's RSS setup (key + indirection table).
    pub rss: RssConfig,
    /// Optional queue-skew mitigation; `None` reproduces the plain sharded
    /// runtime byte for byte.
    pub mitigation: Option<MitigationConfig>,
}

impl ShardConfig {
    /// The default runtime for `n_cores` cores: DPDK-style bursts of 32,
    /// no mitigation.
    pub fn new(n_cores: usize) -> Self {
        ShardConfig {
            n_cores,
            batch_size: 32,
            rss: RssConfig::for_queues(n_cores),
            mitigation: None,
        }
    }

    /// A runtime with no batching (batch of one) — the configuration that
    /// reproduces the unbatched [`crate::chain::ChainDut`] exactly when
    /// `n_cores == 1`.
    pub fn unbatched(n_cores: usize) -> Self {
        ShardConfig {
            batch_size: 1,
            ..Self::new(n_cores)
        }
    }

    /// The same runtime with a mitigation enabled.
    pub fn with_mitigation(self, mitigation: MitigationConfig) -> Self {
        ShardConfig {
            mitigation: Some(mitigation),
            ..self
        }
    }
}

/// Everything measured on one core during a sharded run.
#[derive(Clone, Debug, Default)]
pub struct CoreMeasurement {
    /// End-to-end latency samples of the packets this core forwarded.
    pub latency_ns: Vec<f64>,
    /// Per-packet end-to-end counters (stage sum + forwarding + dispatch
    /// share).
    pub end_to_end: Vec<PacketCounters>,
    /// Per-packet service time in nanoseconds.
    pub service_ns: Vec<f64>,
    /// Packets dropped mid-chain on this core during the measured window.
    pub dropped: usize,
    /// Packets dispatched to this core's queue over the whole run
    /// (including warm-up), counted at dispatch time — with work stealing
    /// a batch may *execute* elsewhere, so this can differ from
    /// [`CoreMeasurement::packets`] even ignoring warm-up.
    pub dispatched: usize,
    /// Cycles this core spent pulling migrated flow state through the
    /// shared L3 after rebalances (whole run; zero without the migration
    /// cost model).
    pub migration_cycles: u64,
    /// Distinct flows whose state this core pulled across at rebalances.
    pub migrated_flows: usize,
    /// Cycles this core spent on stolen-batch overhead (whole run; zero
    /// without work stealing).
    pub steal_cycles: u64,
    /// Batches this core stole from busier cores.
    pub stolen_batches: usize,
    /// This core's view of the shared memory hierarchy (whole run,
    /// including warm-up).
    pub mem: HierarchyStats,
}

impl CoreMeasurement {
    /// Measured packets processed by this core.
    pub fn packets(&self) -> usize {
        self.end_to_end.len()
    }

    /// Total cycles this core spent serving measured packets plus its
    /// mitigation overheads (flow migration, steal bookkeeping). Cores run
    /// concurrently, so the busiest core bounds aggregate throughput.
    pub fn busy_cycles(&self) -> u64 {
        self.end_to_end.iter().map(|c| c.cycles).sum::<u64>()
            + self.migration_cycles
            + self.steal_cycles
    }
}

/// The result of one sharded run: per-core measurements plus aggregate
/// views.
#[derive(Clone, Debug)]
pub struct ShardedMeasurement {
    /// One measurement per core, indexed by core id.
    pub per_core: Vec<CoreMeasurement>,
    /// Batch size the run used.
    pub batch_size: usize,
    /// Clock frequency (Hz) of the simulated cores.
    pub clock_hz: u64,
    /// The indirection table active during each rebalance epoch
    /// (`table_history[e]` served epoch `e`; entry 0 is always the
    /// boot-time round-robin table). A single entry when no mitigation is
    /// configured. This is exactly what an adaptive attacker learns from a
    /// probe round and re-steers against.
    pub table_history: Vec<Vec<u32>>,
}

impl ShardedMeasurement {
    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.per_core.len()
    }

    /// Total measured packets over all cores.
    pub fn measured_packets(&self) -> usize {
        self.per_core.iter().map(CoreMeasurement::packets).sum()
    }

    /// Total packets dropped mid-chain over all cores.
    pub fn dropped(&self) -> usize {
        self.per_core.iter().map(|c| c.dropped).sum()
    }

    /// Exact sum of every core's per-packet counters.
    pub fn aggregate_counters(&self) -> PacketCounters {
        let mut total = PacketCounters::default();
        for core in &self.per_core {
            for c in &core.end_to_end {
                total.cycles += c.cycles;
                total.instructions += c.instructions;
                total.loads += c.loads;
                total.stores += c.stores;
                total.l3_misses += c.l3_misses;
            }
        }
        total
    }

    /// Sum of every core's memory-hierarchy statistics.
    pub fn aggregate_mem(&self) -> HierarchyStats {
        let mut total = HierarchyStats::default();
        for core in &self.per_core {
            total.merge(&core.mem);
        }
        total
    }

    /// The core with the largest busy time (the throughput bottleneck).
    pub fn bottleneck_core(&self) -> usize {
        (0..self.n_cores())
            .max_by_key(|&c| self.per_core[c].busy_cycles())
            .unwrap_or(0)
    }

    /// Fraction of measured packets handled by the busiest-loaded core
    /// (1/n_cores under perfect balance, → 1.0 under full skew).
    pub fn bottleneck_share(&self) -> f64 {
        let total = self.measured_packets();
        if total == 0 {
            return 0.0;
        }
        let max = self
            .per_core
            .iter()
            .map(CoreMeasurement::packets)
            .max()
            .unwrap_or(0);
        max as f64 / total as f64
    }

    /// Aggregate forwarding rate in Mpps: all cores run concurrently, so
    /// the run completes when the bottleneck core finishes its share.
    pub fn aggregate_mpps(&self) -> f64 {
        let bottleneck = &self.per_core[self.bottleneck_core()];
        let busy_cycles = bottleneck.busy_cycles();
        if busy_cycles == 0 {
            return 0.0;
        }
        let clock_ghz = self.clock_hz as f64 / 1e9;
        let busy_ns = busy_cycles as f64 / clock_ghz;
        self.measured_packets() as f64 / busy_ns * 1e3
    }

    /// Total flows whose state was migrated by rebalances.
    pub fn migrated_flows(&self) -> usize {
        self.per_core.iter().map(|c| c.migrated_flows).sum()
    }

    /// Total batches executed away from their home queue by work stealing.
    pub fn stolen_batches(&self) -> usize {
        self.per_core.iter().map(|c| c.stolen_batches).sum()
    }

    /// One end-to-end latency CDF per core (empty CDFs — all-NaN
    /// quantiles — for cores that served no measured packets, e.g. the
    /// idle cores under full queue skew).
    pub fn per_core_latency_cdfs(&self) -> Vec<Cdf> {
        self.per_core
            .iter()
            .map(|c| Cdf::new(c.latency_ns.clone()))
            .collect()
    }

    /// A merged single-stream [`Measurement`] view (per-core samples
    /// concatenated in core order), so the CDF tooling applies unchanged.
    pub fn as_measurement(&self) -> Measurement {
        let mut m = Measurement {
            latency_ns: Vec::new(),
            counters: Vec::new(),
            service_ns: Vec::new(),
        };
        for core in &self.per_core {
            m.latency_ns.extend_from_slice(&core.latency_ns);
            m.counters.extend_from_slice(&core.end_to_end);
            m.service_ns.extend_from_slice(&core.service_ns);
        }
        m
    }
}

/// One core's private chain instance: per-stage data memories and handoff
/// state.
struct CoreState {
    mems: Vec<DataMemory>,
    handoffs: Vec<Box<dyn StageHandoff>>,
}

/// The sharded device under test.
pub struct ShardedDut {
    chain: NfChain,
    shard: ShardConfig,
    cpu: MultiCoreCpu,
    cores: Vec<CoreState>,
    dispatcher: RssDispatcher,
    limits: RunLimits,
}

impl ShardedDut {
    /// Boots a sharded DUT running one instance of `chain` per core on the
    /// Xeon E5-2667v2 profile (per-core L1/L2, shared L3).
    pub fn new(chain: NfChain, shard: ShardConfig, cfg: &MeasurementConfig) -> Self {
        assert!(shard.n_cores > 0, "need at least one core");
        assert!(
            (chain.len() as u64) * castan_chain::STAGE_ADDR_STRIDE <= CORE_ADDR_STRIDE,
            "chain has too many stages for the per-core address stride \
             ({} stages; at most {} fit without aliasing the next core)",
            chain.len(),
            CORE_ADDR_STRIDE / castan_chain::STAGE_ADDR_STRIDE,
        );
        let hierarchy = MultiCoreHierarchy::new(
            HierarchyConfig::xeon_e5_2667v2(),
            cfg.boot_seed,
            shard.n_cores,
        );
        let cores = (0..shard.n_cores)
            .map(|_| CoreState {
                mems: chain
                    .stages
                    .iter()
                    .map(|s| s.nf.initial_memory.clone())
                    .collect(),
                handoffs: chain.handoffs(),
            })
            .collect();
        let dispatcher = RssDispatcher::new(shard.rss);
        assert_eq!(
            dispatcher.n_queues(),
            shard.n_cores,
            "one RSS queue per core"
        );
        ShardedDut {
            chain,
            cpu: MultiCoreCpu::new(hierarchy),
            cores,
            dispatcher,
            limits: RunLimits::default(),
            shard,
        }
    }

    /// The chain this DUT runs (one instance per core).
    pub fn chain(&self) -> &NfChain {
        &self.chain
    }

    /// The dispatcher in front of the cores.
    pub fn dispatcher(&self) -> &RssDispatcher {
        &self.dispatcher
    }

    /// Replays a workload through the dispatcher and all cores, measuring
    /// per-core and aggregate behaviour. Each call starts from freshly
    /// initialised chain instances, cold caches and the boot-time
    /// round-robin indirection table; state then persists across the run,
    /// exactly like the unbatched DUTs.
    ///
    /// With a [`MitigationConfig`], every `epoch_packets` input packets the
    /// DUT drains the in-flight batches, hands the epoch's per-entry loads
    /// to the rebalance policy, and installs the rewritten table; the table
    /// active in each epoch is recorded in
    /// [`ShardedMeasurement::table_history`]. When the migration cost model
    /// is on, each flow whose entry changed queues charges the destination
    /// core [`MIGRATION_LINES_PER_FLOW`] shared-L3 hits of busy time. With
    /// work stealing, a full batch whose home core has fallen
    /// [`STEAL_THRESHOLD_CYCLES`] behind the idlest core executes there
    /// instead (on that core's chain instance — affinity is broken, which
    /// is the point), paying [`STEAL_BATCH_CYCLES`].
    pub fn run(&mut self, workload: &Workload, cfg: &MeasurementConfig) -> ShardedMeasurement {
        assert!(!workload.is_empty(), "cannot replay an empty workload");
        let n_cores = self.shard.n_cores;
        for core in &mut self.cores {
            for (mem, stage) in core.mems.iter_mut().zip(&self.chain.stages) {
                *mem = stage.nf.initial_memory.clone();
            }
            for h in &mut core.handoffs {
                h.reset();
            }
        }
        self.cpu.flush_caches();
        self.cpu.reset_stats();
        // A previous mitigated run may have rewritten the table; every run
        // starts from the boot-time round-robin fill.
        self.dispatcher = RssDispatcher::new(self.shard.rss);

        // One measurement-noise RNG per core; core 0 uses the seed of the
        // single-core DUTs so the 1-core sharded run is bit-identical.
        let mut rngs: Vec<StdRng> = (0..n_cores)
            .map(|c| {
                StdRng::seed_from_u64(cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            })
            .collect();
        let clock_ghz = self.cpu.clock_hz() as f64 / 1e9;
        let mut out: Vec<CoreMeasurement> =
            (0..n_cores).map(|_| CoreMeasurement::default()).collect();
        // Whole-run busy time per core (warm-up included): the work-stealing
        // trigger compares these, and mitigation overheads accrue here too.
        let mut busy = vec![0u64; n_cores];
        let mut table_history = vec![self.dispatcher.table().to_vec()];
        let mitigation = self.shard.mitigation;
        let mut tracker = mitigation.map(|_| LoadTracker::new(self.shard.rss.table_size));
        let mut epoch = 0u64;

        let mut batcher: Batcher<(usize, Packet)> = Batcher::new(n_cores, self.shard.batch_size);
        for i in 0..cfg.total_packets {
            if let (Some(m), Some(t)) = (mitigation, tracker.as_mut()) {
                if i > 0 && i % m.epoch_packets == 0 {
                    // Epoch boundary: drain in-flight batches first, so no
                    // packet dispatched under the old table executes after
                    // the rewrite.
                    for (queue, batch) in batcher.flush() {
                        busy[queue] += exec_batch(
                            &self.chain,
                            &mut self.cpu,
                            &mut self.cores[queue],
                            self.limits,
                            queue,
                            &batch,
                            cfg,
                            &mut rngs[queue],
                            &mut out[queue],
                            clock_ghz,
                        );
                    }
                    epoch += 1;
                    let old = self.dispatcher.table().to_vec();
                    let new = rebalanced_table(m.policy, t.counts(), &old, n_cores, epoch);
                    if new != old {
                        if m.migration_cost {
                            let l3_hit = self.cpu.hierarchy().config().latencies.l3;
                            let moved = t.moved_flows_per_queue(&old, &new, n_cores);
                            for (q, &flows) in moved.iter().enumerate() {
                                let cycles = flows as u64 * MIGRATION_LINES_PER_FLOW * l3_hit;
                                out[q].migration_cycles += cycles;
                                out[q].migrated_flows += flows;
                                busy[q] += cycles;
                            }
                        }
                        self.dispatcher.set_table(new);
                    }
                    table_history.push(self.dispatcher.table().to_vec());
                    t.reset();
                }
            }

            let pkt = workload.packets[i % workload.packets.len()];
            let queue = self.dispatcher.queue_of_packet(&pkt);
            if let Some(t) = tracker.as_mut() {
                if let Some(entry) = self.dispatcher.entry_of_packet(&pkt) {
                    t.record(entry, pkt.flow().map(|f| f.to_u128()));
                }
            }
            out[queue].dispatched += 1;
            if let Some(batch) = batcher.push(queue, (i, pkt)) {
                let mut core = queue;
                if mitigation.is_some_and(|m| m.work_stealing) {
                    let idlest = (0..n_cores).min_by_key(|&c| (busy[c], c)).unwrap_or(queue);
                    if idlest != queue && busy[queue] >= busy[idlest] + STEAL_THRESHOLD_CYCLES {
                        core = idlest;
                        out[core].stolen_batches += 1;
                        out[core].steal_cycles += STEAL_BATCH_CYCLES;
                        busy[core] += STEAL_BATCH_CYCLES;
                    }
                }
                busy[core] += exec_batch(
                    &self.chain,
                    &mut self.cpu,
                    &mut self.cores[core],
                    self.limits,
                    core,
                    &batch,
                    cfg,
                    &mut rngs[core],
                    &mut out[core],
                    clock_ghz,
                );
            }
        }
        // End of trace: drain the partial batches in core order.
        for (queue, batch) in batcher.flush() {
            busy[queue] += exec_batch(
                &self.chain,
                &mut self.cpu,
                &mut self.cores[queue],
                self.limits,
                queue,
                &batch,
                cfg,
                &mut rngs[queue],
                &mut out[queue],
                clock_ghz,
            );
        }

        for (c, core) in out.iter_mut().enumerate() {
            core.mem = self.cpu.hierarchy().core_stats(c);
        }
        ShardedMeasurement {
            per_core: out,
            batch_size: self.shard.batch_size,
            clock_hz: self.cpu.clock_hz(),
            table_history,
        }
    }
}

/// Executes one batch on one core: every stage of the core's chain
/// instance per packet, the per-packet forwarding overhead, and the batch's
/// dispatch overhead distributed exactly over its packets. Returns the
/// batch's total cycles (warm-up packets included) — the core's busy-time
/// contribution the work-stealing trigger compares.
#[allow(clippy::too_many_arguments)]
fn exec_batch(
    chain: &NfChain,
    cpu: &mut MultiCoreCpu,
    state: &mut CoreState,
    limits: RunLimits,
    core: usize,
    batch: &[(usize, Packet)],
    cfg: &MeasurementConfig,
    rng: &mut StdRng,
    out: &mut CoreMeasurement,
    clock_ghz: f64,
) -> u64 {
    let n = batch.len() as u64;
    let dispatch_share = BATCH_DISPATCH_CYCLES / n;
    let dispatch_rem = BATCH_DISPATCH_CYCLES % n;
    let core_base = core as u64 * CORE_ADDR_STRIDE;
    let n_stages = chain.len();
    let mut batch_cycles = 0u64;

    for (k, (i, pkt)) in batch.iter().enumerate() {
        let mut pkt = *pkt;
        let mut total = PacketCounters::default();
        let mut was_dropped = false;

        for s in 0..n_stages {
            let stage = &chain.stages[s];
            let interp = Interpreter::new(&stage.nf.program, &stage.nf.natives).with_limits(limits);
            cpu.begin_packet();
            let verdict = {
                let mut sink = cpu.sink(core, core_base + stage.addr_base);
                interp
                    .run_packet(&mut state.mems[s], &pkt, &mut sink)
                    .expect("stage execution failed on the sharded DUT")
                    .return_value
                    .unwrap_or(castan_nf::layout::VERDICT_DROP)
            };
            let c = cpu.packet_counters();
            total.cycles += c.cycles;
            total.instructions += c.instructions;
            total.loads += c.loads;
            total.stores += c.stores;
            total.l3_misses += c.l3_misses;

            match state.handoffs[s].apply(&pkt, verdict) {
                Some(next) => pkt = next,
                None => {
                    was_dropped = true;
                    break;
                }
            }
        }

        total.cycles +=
            PACKET_FORWARD_CYCLES + dispatch_share + u64::from((k as u64) < dispatch_rem);
        total.instructions += FORWARDING_OVERHEAD_INSTRUCTIONS;
        total.l3_misses += FORWARDING_OVERHEAD_MISSES;
        batch_cycles += total.cycles;

        if *i < cfg.warmup_packets {
            continue;
        }
        if was_dropped {
            out.dropped += 1;
        }
        let service = total.cycles as f64 / clock_ghz; // ns
        let base_jitter: f64 = rng.random_range(0.0..60.0);
        let tail: f64 = if rng.random_bool(0.02) {
            rng.random_range(100.0..400.0)
        } else {
            0.0
        };
        out.latency_ns
            .push(WIRE_LATENCY_NS + service + base_jitter + tail);
        out.service_ns.push(service);
        out.end_to_end.push(total);
    }
    batch_cycles
}

/// Convenience: measure one chain under one workload with a fresh sharded
/// DUT.
pub fn measure_sharded(
    chain: &NfChain,
    shard: ShardConfig,
    workload: &Workload,
    cfg: &MeasurementConfig,
) -> ShardedMeasurement {
    let mut dut = ShardedDut::new(chain.clone(), shard, cfg);
    dut.run(workload, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::measure_chain;
    use castan_chain::{chain_by_id, ChainId};
    use castan_workload::{generic_chain_workload, WorkloadConfig, WorkloadKind};

    fn quick() -> MeasurementConfig {
        MeasurementConfig::quick()
    }

    #[test]
    fn one_core_unbatched_is_bit_identical_to_the_chain_dut() {
        // The sharded runtime over 1 core with batches of 1 must reproduce
        // the unbatched ChainDut byte-for-byte: same counters, same latency
        // samples, same drop count.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.005),
        );
        let cfg = quick();
        let single = measure_chain(&chain, &wl, &cfg);
        let sharded = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        assert_eq!(sharded.n_cores(), 1);
        let core = &sharded.per_core[0];
        assert_eq!(core.end_to_end, single.end_to_end);
        assert_eq!(core.latency_ns, single.latency_ns);
        assert_eq!(core.service_ns, single.service_ns);
        assert_eq!(core.dropped, single.dropped);
    }

    #[test]
    fn batching_amortises_dispatch_cycles() {
        // Same traffic, batch of 32 vs batch of 1: the batched run saves
        // close to BATCH_DISPATCH_CYCLES * (1 - 1/32) cycles per packet.
        let chain = chain_by_id(ChainId::Nop3);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.005),
        );
        let cfg = quick();
        let unbatched = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        let batched = measure_sharded(
            &chain,
            ShardConfig {
                batch_size: 32,
                ..ShardConfig::new(1)
            },
            &wl,
            &cfg,
        );
        let cpp = |m: &ShardedMeasurement| {
            m.aggregate_counters().cycles as f64 / m.measured_packets() as f64
        };
        let saved = cpp(&unbatched) - cpp(&batched);
        let expected = BATCH_DISPATCH_CYCLES as f64 * (1.0 - 1.0 / 32.0);
        assert!(
            (saved - expected).abs() < 20.0,
            "batching should save ≈{expected:.0} cycles/packet, saved {saved:.0}"
        );
    }

    #[test]
    fn per_core_counters_reconcile_with_the_aggregate() {
        // Mirrors PR 1's per-stage reconciliation: per-core packet and
        // cycle counters must sum exactly to the aggregate measurement,
        // and the per-core hierarchy statistics to the hierarchy total.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let m = measure_sharded(&chain, ShardConfig::new(4), &wl, &cfg);

        assert_eq!(
            m.measured_packets(),
            cfg.total_packets - cfg.warmup_packets,
            "every non-warmup packet is measured on exactly one core"
        );
        let agg = m.aggregate_counters();
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        let mut misses = 0u64;
        for core in &m.per_core {
            cycles += core.busy_cycles();
            instructions += core.end_to_end.iter().map(|c| c.instructions).sum::<u64>();
            misses += core.end_to_end.iter().map(|c| c.l3_misses).sum::<u64>();
        }
        assert_eq!(agg.cycles, cycles);
        assert_eq!(agg.instructions, instructions);
        assert_eq!(agg.l3_misses, misses);

        let mem = m.aggregate_mem();
        let mut accesses = 0u64;
        for core in &m.per_core {
            accesses += core.mem.accesses;
        }
        assert_eq!(mem.accesses, accesses);
        assert!(accesses > 0, "the run exercised the shared hierarchy");
    }

    #[test]
    #[should_panic(expected = "too many stages")]
    fn overlong_chains_are_rejected_instead_of_aliasing_cores() {
        use castan_nf::{nf_by_id, NfId};
        let nine =
            castan_chain::NfChain::new("nop9", (0..9).map(|_| nf_by_id(NfId::Nop)).collect());
        let _ = ShardedDut::new(nine, ShardConfig::new(2), &quick());
    }

    #[test]
    fn rebalancing_spreads_a_static_skew_after_one_epoch() {
        use castan_runtime::{skew_packets, RebalancePolicy, RssDispatcher};

        let chain = chain_by_id(ChainId::Nop3);
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            ..quick()
        };
        let shard = ShardConfig::new(4);
        let base = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.0005),
        );
        let skew = skew_packets(&base.packets, &RssDispatcher::new(shard.rss), 0);
        let wl = castan_workload::Workload {
            kind: WorkloadKind::RssSkew,
            packets: skew.packets,
        };

        // No mitigation: everything lands (and stays) on core 0.
        let none = measure_sharded(&chain, shard, &wl, &cfg);
        assert_eq!(none.table_history.len(), 1, "no rebalance, boot table only");
        assert!(none.bottleneck_share() > 0.99);

        // Least-loaded rebalancing every 60 packets: from epoch 1 on, the
        // hot entries are spread over all four cores.
        let mitigated = shard.with_mitigation(MitigationConfig::rebalance(
            60,
            RebalancePolicy::LeastLoaded,
        ));
        let m = measure_sharded(&chain, mitigated, &wl, &cfg);
        assert_eq!(m.table_history.len(), 8, "one table per 60-packet epoch");
        assert_ne!(m.table_history[1], m.table_history[0], "epoch 1 rebalanced");
        assert!(
            m.bottleneck_share() < 0.5,
            "rebalancing must spread the skew: share {}",
            m.bottleneck_share()
        );
        assert!(
            m.aggregate_mpps() > 2.0 * none.aggregate_mpps(),
            "rebalanced skew {:.2} Mpps must beat unmitigated {:.2} Mpps",
            m.aggregate_mpps(),
            none.aggregate_mpps()
        );
        // Same run with the migration cost model: flows moved, the
        // destination cores paid for them, throughput dips but survives.
        let paid = measure_sharded(
            &chain,
            shard.with_mitigation(
                MitigationConfig::rebalance(60, RebalancePolicy::LeastLoaded).with_migration_cost(),
            ),
            &wl,
            &cfg,
        );
        assert!(paid.migrated_flows() > 0, "the rebalance moved flow state");
        assert_eq!(
            paid.table_history, m.table_history,
            "the cost model must not change the rebalance schedule"
        );
        assert!(paid.aggregate_mpps() <= m.aggregate_mpps());
        assert!(paid.aggregate_mpps() > 2.0 * none.aggregate_mpps());
    }

    #[test]
    fn one_core_mitigation_is_a_no_op() {
        use castan_runtime::RebalancePolicy;

        // With a single queue every policy is a no-op (nothing to move to),
        // so a mitigated 1-core run is byte-identical to the plain one.
        // Unbatched: the epoch boundary drains in-flight batches, which
        // with larger bursts re-shapes the dispatch-cost amortisation —
        // that drain is deliberate mitigation behaviour, not a bug.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = MeasurementConfig {
            total_packets: 400,
            warmup_packets: 40,
            ..quick()
        };
        let plain = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        let mitigated = measure_sharded(
            &chain,
            ShardConfig::unbatched(1).with_mitigation(
                MitigationConfig::rebalance(50, RebalancePolicy::LeastLoaded)
                    .with_migration_cost()
                    .with_work_stealing(),
            ),
            &wl,
            &cfg,
        );
        assert_eq!(
            plain.per_core[0].end_to_end,
            mitigated.per_core[0].end_to_end
        );
        assert_eq!(
            plain.per_core[0].latency_ns,
            mitigated.per_core[0].latency_ns
        );
        assert_eq!(mitigated.migrated_flows(), 0);
        assert_eq!(mitigated.stolen_batches(), 0);
        assert!(mitigated
            .table_history
            .iter()
            .all(|t| t.iter().all(|&q| q == 0)));
    }

    #[test]
    fn work_stealing_moves_batches_off_a_skewed_core() {
        use castan_runtime::{skew_packets, RebalancePolicy, RssDispatcher};

        let chain = chain_by_id(ChainId::Nop3);
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            ..quick()
        };
        let shard = ShardConfig::new(4);
        let base = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.0005),
        );
        let skew = skew_packets(&base.packets, &RssDispatcher::new(shard.rss), 0);
        let wl = castan_workload::Workload {
            kind: WorkloadKind::RssSkew,
            packets: skew.packets,
        };
        // Round-robin "rebalancing" never changes the table, so only the
        // work-stealing sink can spread this skew.
        let m = measure_sharded(
            &chain,
            shard.with_mitigation(
                MitigationConfig::rebalance(1_000_000, RebalancePolicy::RoundRobin)
                    .with_work_stealing(),
            ),
            &wl,
            &cfg,
        );
        assert!(m.stolen_batches() > 0, "idle cores must steal batches");
        assert!(
            m.bottleneck_share() < 0.9,
            "stealing must offload the victim core: share {}",
            m.bottleneck_share()
        );
        // Every dispatched packet still went to queue 0 — stealing happens
        // after dispatch.
        assert_eq!(m.per_core[0].dispatched, cfg.total_packets);
    }

    #[test]
    fn uniform_traffic_spreads_over_all_cores() {
        let chain = chain_by_id(ChainId::Nop3);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let m = measure_sharded(&chain, ShardConfig::new(4), &wl, &cfg);
        for (c, core) in m.per_core.iter().enumerate() {
            assert!(
                core.packets() > 0,
                "core {c} received no packets under uniform traffic"
            );
        }
        assert!(
            m.bottleneck_share() < 0.45,
            "uniform traffic should spread: bottleneck share {}",
            m.bottleneck_share()
        );
    }
}

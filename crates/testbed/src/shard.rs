//! The sharded datapath: an RSS dispatcher in front of N simulated cores,
//! each running its own instance of an NF chain, all contending for one
//! shared L3.
//!
//! This is the multi-core analogue of [`ChainDut`](crate::chain::ChainDut):
//! packets are Toeplitz-hashed over their 5-tuple onto per-core receive
//! queues (`castan-runtime`), buffered into batches, and each core executes
//! its batch on private L1/L2 levels in front of the shared last-level
//! cache ([`castan_mem::MultiCoreHierarchy`]). Every core owns a *private*
//! chain instance — its own stage memories, handoff state and address
//! region — so cores never share NF state (exactly the share-nothing
//! RSS deployment model), but they do evict each other's lines from the
//! inclusive L3.
//!
//! **Cost model.** Per packet, each stage's retired instructions and
//! memory cycles are charged through the shared hierarchy as in the
//! chained DUT. The fixed forwarding overhead is split: the per-packet
//! share ([`PACKET_FORWARD_CYCLES`]) is paid by every packet, while the
//! dispatch share ([`BATCH_DISPATCH_CYCLES`]) is paid once per *batch* and
//! distributed exactly over the batch's packets (the first
//! `BATCH_DISPATCH_CYCLES mod n` packets carry the remainder cycle).
//! A 1-core, batch-of-1 sharded DUT therefore reproduces the unbatched
//! [`ChainDut`](crate::chain::ChainDut) byte-for-byte — counters, latency
//! samples and all — which is pinned by a test.
//!
//! **Throughput.** Cores run concurrently, so the aggregate forwarding
//! rate is bounded by the *busiest* core:
//! `aggregate Mpps = measured packets / busy time of the bottleneck core`.
//! Uniform traffic spreads flows evenly and scales near-linearly with the
//! core count; a queue-skew workload (all 5-tuples on one RSS queue)
//! saturates one core while the rest idle, collapsing the aggregate to
//! roughly the single-core rate. That collapse is the adversarial target
//! of `castan-core`'s queue-skew synthesis.

use castan_chain::{NfChain, StageHandoff};
use castan_ir::{DataMemory, Interpreter, RunLimits};
use castan_mem::{HierarchyConfig, HierarchyStats, MultiCoreHierarchy};
use castan_runtime::{Batcher, RssConfig, RssDispatcher};
use castan_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use castan_packet::Packet;

use crate::cpu::{MultiCoreCpu, PacketCounters};
use crate::dut::{Measurement, MeasurementConfig};
use crate::{
    BATCH_DISPATCH_CYCLES, FORWARDING_OVERHEAD_INSTRUCTIONS, FORWARDING_OVERHEAD_MISSES,
    PACKET_FORWARD_CYCLES, WIRE_LATENCY_NS,
};

/// Address-space stride between cores. Each core's chain instance occupies
/// `core * CORE_ADDR_STRIDE + stage * STAGE_ADDR_STRIDE`, so distinct cores
/// (and distinct stages within a core) never alias in the shared cache.
/// 512 GiB leaves room for 8 stages of 64 GiB each per core.
pub const CORE_ADDR_STRIDE: u64 = 1 << 39;

const _: () = assert!(CORE_ADDR_STRIDE >= 8 * castan_chain::STAGE_ADDR_STRIDE);

/// Sharded-runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of simulated cores (= RSS queues).
    pub n_cores: usize,
    /// Packets per dispatch batch.
    pub batch_size: usize,
    /// The NIC's RSS setup (key + indirection table).
    pub rss: RssConfig,
}

impl ShardConfig {
    /// The default runtime for `n_cores` cores: DPDK-style bursts of 32.
    pub fn new(n_cores: usize) -> Self {
        ShardConfig {
            n_cores,
            batch_size: 32,
            rss: RssConfig::for_queues(n_cores),
        }
    }

    /// A runtime with no batching (batch of one) — the configuration that
    /// reproduces the unbatched [`crate::chain::ChainDut`] exactly when
    /// `n_cores == 1`.
    pub fn unbatched(n_cores: usize) -> Self {
        ShardConfig {
            batch_size: 1,
            ..Self::new(n_cores)
        }
    }
}

/// Everything measured on one core during a sharded run.
#[derive(Clone, Debug, Default)]
pub struct CoreMeasurement {
    /// End-to-end latency samples of the packets this core forwarded.
    pub latency_ns: Vec<f64>,
    /// Per-packet end-to-end counters (stage sum + forwarding + dispatch
    /// share).
    pub end_to_end: Vec<PacketCounters>,
    /// Per-packet service time in nanoseconds.
    pub service_ns: Vec<f64>,
    /// Packets dropped mid-chain on this core during the measured window.
    pub dropped: usize,
    /// This core's view of the shared memory hierarchy (whole run,
    /// including warm-up).
    pub mem: HierarchyStats,
}

impl CoreMeasurement {
    /// Measured packets processed by this core.
    pub fn packets(&self) -> usize {
        self.end_to_end.len()
    }

    /// Total cycles this core spent serving measured packets (its busy
    /// time; cores run concurrently, so the busiest core bounds aggregate
    /// throughput).
    pub fn busy_cycles(&self) -> u64 {
        self.end_to_end.iter().map(|c| c.cycles).sum()
    }
}

/// The result of one sharded run: per-core measurements plus aggregate
/// views.
#[derive(Clone, Debug)]
pub struct ShardedMeasurement {
    /// One measurement per core, indexed by core id.
    pub per_core: Vec<CoreMeasurement>,
    /// Batch size the run used.
    pub batch_size: usize,
    /// Clock frequency (Hz) of the simulated cores.
    pub clock_hz: u64,
}

impl ShardedMeasurement {
    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.per_core.len()
    }

    /// Total measured packets over all cores.
    pub fn measured_packets(&self) -> usize {
        self.per_core.iter().map(CoreMeasurement::packets).sum()
    }

    /// Total packets dropped mid-chain over all cores.
    pub fn dropped(&self) -> usize {
        self.per_core.iter().map(|c| c.dropped).sum()
    }

    /// Exact sum of every core's per-packet counters.
    pub fn aggregate_counters(&self) -> PacketCounters {
        let mut total = PacketCounters::default();
        for core in &self.per_core {
            for c in &core.end_to_end {
                total.cycles += c.cycles;
                total.instructions += c.instructions;
                total.loads += c.loads;
                total.stores += c.stores;
                total.l3_misses += c.l3_misses;
            }
        }
        total
    }

    /// Sum of every core's memory-hierarchy statistics.
    pub fn aggregate_mem(&self) -> HierarchyStats {
        let mut total = HierarchyStats::default();
        for core in &self.per_core {
            total.merge(&core.mem);
        }
        total
    }

    /// The core with the largest busy time (the throughput bottleneck).
    pub fn bottleneck_core(&self) -> usize {
        (0..self.n_cores())
            .max_by_key(|&c| self.per_core[c].busy_cycles())
            .unwrap_or(0)
    }

    /// Fraction of measured packets handled by the busiest-loaded core
    /// (1/n_cores under perfect balance, → 1.0 under full skew).
    pub fn bottleneck_share(&self) -> f64 {
        let total = self.measured_packets();
        if total == 0 {
            return 0.0;
        }
        let max = self
            .per_core
            .iter()
            .map(CoreMeasurement::packets)
            .max()
            .unwrap_or(0);
        max as f64 / total as f64
    }

    /// Aggregate forwarding rate in Mpps: all cores run concurrently, so
    /// the run completes when the bottleneck core finishes its share.
    pub fn aggregate_mpps(&self) -> f64 {
        let bottleneck = &self.per_core[self.bottleneck_core()];
        let busy_cycles = bottleneck.busy_cycles();
        if busy_cycles == 0 {
            return 0.0;
        }
        let clock_ghz = self.clock_hz as f64 / 1e9;
        let busy_ns = busy_cycles as f64 / clock_ghz;
        self.measured_packets() as f64 / busy_ns * 1e3
    }

    /// A merged single-stream [`Measurement`] view (per-core samples
    /// concatenated in core order), so the CDF tooling applies unchanged.
    pub fn as_measurement(&self) -> Measurement {
        let mut m = Measurement {
            latency_ns: Vec::new(),
            counters: Vec::new(),
            service_ns: Vec::new(),
        };
        for core in &self.per_core {
            m.latency_ns.extend_from_slice(&core.latency_ns);
            m.counters.extend_from_slice(&core.end_to_end);
            m.service_ns.extend_from_slice(&core.service_ns);
        }
        m
    }
}

/// One core's private chain instance: per-stage data memories and handoff
/// state.
struct CoreState {
    mems: Vec<DataMemory>,
    handoffs: Vec<Box<dyn StageHandoff>>,
}

/// The sharded device under test.
pub struct ShardedDut {
    chain: NfChain,
    shard: ShardConfig,
    cpu: MultiCoreCpu,
    cores: Vec<CoreState>,
    dispatcher: RssDispatcher,
    limits: RunLimits,
}

impl ShardedDut {
    /// Boots a sharded DUT running one instance of `chain` per core on the
    /// Xeon E5-2667v2 profile (per-core L1/L2, shared L3).
    pub fn new(chain: NfChain, shard: ShardConfig, cfg: &MeasurementConfig) -> Self {
        assert!(shard.n_cores > 0, "need at least one core");
        assert!(
            (chain.len() as u64) * castan_chain::STAGE_ADDR_STRIDE <= CORE_ADDR_STRIDE,
            "chain has too many stages for the per-core address stride \
             ({} stages; at most {} fit without aliasing the next core)",
            chain.len(),
            CORE_ADDR_STRIDE / castan_chain::STAGE_ADDR_STRIDE,
        );
        let hierarchy = MultiCoreHierarchy::new(
            HierarchyConfig::xeon_e5_2667v2(),
            cfg.boot_seed,
            shard.n_cores,
        );
        let cores = (0..shard.n_cores)
            .map(|_| CoreState {
                mems: chain
                    .stages
                    .iter()
                    .map(|s| s.nf.initial_memory.clone())
                    .collect(),
                handoffs: chain.handoffs(),
            })
            .collect();
        let dispatcher = RssDispatcher::new(shard.rss);
        assert_eq!(
            dispatcher.n_queues(),
            shard.n_cores,
            "one RSS queue per core"
        );
        ShardedDut {
            chain,
            cpu: MultiCoreCpu::new(hierarchy),
            cores,
            dispatcher,
            limits: RunLimits::default(),
            shard,
        }
    }

    /// The chain this DUT runs (one instance per core).
    pub fn chain(&self) -> &NfChain {
        &self.chain
    }

    /// The dispatcher in front of the cores.
    pub fn dispatcher(&self) -> &RssDispatcher {
        &self.dispatcher
    }

    /// Replays a workload through the dispatcher and all cores, measuring
    /// per-core and aggregate behaviour. Each call starts from freshly
    /// initialised chain instances and cold caches; state then persists
    /// across the run, exactly like the unbatched DUTs.
    pub fn run(&mut self, workload: &Workload, cfg: &MeasurementConfig) -> ShardedMeasurement {
        assert!(!workload.is_empty(), "cannot replay an empty workload");
        let n_cores = self.shard.n_cores;
        for core in &mut self.cores {
            for (mem, stage) in core.mems.iter_mut().zip(&self.chain.stages) {
                *mem = stage.nf.initial_memory.clone();
            }
            for h in &mut core.handoffs {
                h.reset();
            }
        }
        self.cpu.flush_caches();
        self.cpu.reset_stats();

        // One measurement-noise RNG per core; core 0 uses the seed of the
        // single-core DUTs so the 1-core sharded run is bit-identical.
        let mut rngs: Vec<StdRng> = (0..n_cores)
            .map(|c| {
                StdRng::seed_from_u64(cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            })
            .collect();
        let clock_ghz = self.cpu.clock_hz() as f64 / 1e9;
        let mut out: Vec<CoreMeasurement> =
            (0..n_cores).map(|_| CoreMeasurement::default()).collect();

        let mut batcher: Batcher<(usize, Packet)> = Batcher::new(n_cores, self.shard.batch_size);
        for i in 0..cfg.total_packets {
            let pkt = workload.packets[i % workload.packets.len()];
            let queue = self.dispatcher.queue_of_packet(&pkt);
            if let Some(batch) = batcher.push(queue, (i, pkt)) {
                exec_batch(
                    &self.chain,
                    &mut self.cpu,
                    &mut self.cores[queue],
                    self.limits,
                    queue,
                    &batch,
                    cfg,
                    &mut rngs[queue],
                    &mut out[queue],
                    clock_ghz,
                );
            }
        }
        // End of trace: drain the partial batches in core order.
        for (queue, batch) in batcher.flush() {
            exec_batch(
                &self.chain,
                &mut self.cpu,
                &mut self.cores[queue],
                self.limits,
                queue,
                &batch,
                cfg,
                &mut rngs[queue],
                &mut out[queue],
                clock_ghz,
            );
        }

        for (c, core) in out.iter_mut().enumerate() {
            core.mem = self.cpu.hierarchy().core_stats(c);
        }
        ShardedMeasurement {
            per_core: out,
            batch_size: self.shard.batch_size,
            clock_hz: self.cpu.clock_hz(),
        }
    }
}

/// Executes one batch on one core: every stage of the core's chain
/// instance per packet, the per-packet forwarding overhead, and the batch's
/// dispatch overhead distributed exactly over its packets.
#[allow(clippy::too_many_arguments)]
fn exec_batch(
    chain: &NfChain,
    cpu: &mut MultiCoreCpu,
    state: &mut CoreState,
    limits: RunLimits,
    core: usize,
    batch: &[(usize, Packet)],
    cfg: &MeasurementConfig,
    rng: &mut StdRng,
    out: &mut CoreMeasurement,
    clock_ghz: f64,
) {
    let n = batch.len() as u64;
    let dispatch_share = BATCH_DISPATCH_CYCLES / n;
    let dispatch_rem = BATCH_DISPATCH_CYCLES % n;
    let core_base = core as u64 * CORE_ADDR_STRIDE;
    let n_stages = chain.len();

    for (k, (i, pkt)) in batch.iter().enumerate() {
        let mut pkt = *pkt;
        let mut total = PacketCounters::default();
        let mut was_dropped = false;

        for s in 0..n_stages {
            let stage = &chain.stages[s];
            let interp = Interpreter::new(&stage.nf.program, &stage.nf.natives).with_limits(limits);
            cpu.begin_packet();
            let verdict = {
                let mut sink = cpu.sink(core, core_base + stage.addr_base);
                interp
                    .run_packet(&mut state.mems[s], &pkt, &mut sink)
                    .expect("stage execution failed on the sharded DUT")
                    .return_value
                    .unwrap_or(castan_nf::layout::VERDICT_DROP)
            };
            let c = cpu.packet_counters();
            total.cycles += c.cycles;
            total.instructions += c.instructions;
            total.loads += c.loads;
            total.stores += c.stores;
            total.l3_misses += c.l3_misses;

            match state.handoffs[s].apply(&pkt, verdict) {
                Some(next) => pkt = next,
                None => {
                    was_dropped = true;
                    break;
                }
            }
        }

        total.cycles +=
            PACKET_FORWARD_CYCLES + dispatch_share + u64::from((k as u64) < dispatch_rem);
        total.instructions += FORWARDING_OVERHEAD_INSTRUCTIONS;
        total.l3_misses += FORWARDING_OVERHEAD_MISSES;

        if *i < cfg.warmup_packets {
            continue;
        }
        if was_dropped {
            out.dropped += 1;
        }
        let service = total.cycles as f64 / clock_ghz; // ns
        let base_jitter: f64 = rng.random_range(0.0..60.0);
        let tail: f64 = if rng.random_bool(0.02) {
            rng.random_range(100.0..400.0)
        } else {
            0.0
        };
        out.latency_ns
            .push(WIRE_LATENCY_NS + service + base_jitter + tail);
        out.service_ns.push(service);
        out.end_to_end.push(total);
    }
}

/// Convenience: measure one chain under one workload with a fresh sharded
/// DUT.
pub fn measure_sharded(
    chain: &NfChain,
    shard: ShardConfig,
    workload: &Workload,
    cfg: &MeasurementConfig,
) -> ShardedMeasurement {
    let mut dut = ShardedDut::new(chain.clone(), shard, cfg);
    dut.run(workload, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::measure_chain;
    use castan_chain::{chain_by_id, ChainId};
    use castan_workload::{generic_chain_workload, WorkloadConfig, WorkloadKind};

    fn quick() -> MeasurementConfig {
        MeasurementConfig::quick()
    }

    #[test]
    fn one_core_unbatched_is_bit_identical_to_the_chain_dut() {
        // The sharded runtime over 1 core with batches of 1 must reproduce
        // the unbatched ChainDut byte-for-byte: same counters, same latency
        // samples, same drop count.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.005),
        );
        let cfg = quick();
        let single = measure_chain(&chain, &wl, &cfg);
        let sharded = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        assert_eq!(sharded.n_cores(), 1);
        let core = &sharded.per_core[0];
        assert_eq!(core.end_to_end, single.end_to_end);
        assert_eq!(core.latency_ns, single.latency_ns);
        assert_eq!(core.service_ns, single.service_ns);
        assert_eq!(core.dropped, single.dropped);
    }

    #[test]
    fn batching_amortises_dispatch_cycles() {
        // Same traffic, batch of 32 vs batch of 1: the batched run saves
        // close to BATCH_DISPATCH_CYCLES * (1 - 1/32) cycles per packet.
        let chain = chain_by_id(ChainId::Nop3);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.005),
        );
        let cfg = quick();
        let unbatched = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        let batched = measure_sharded(
            &chain,
            ShardConfig {
                batch_size: 32,
                ..ShardConfig::new(1)
            },
            &wl,
            &cfg,
        );
        let cpp = |m: &ShardedMeasurement| {
            m.aggregate_counters().cycles as f64 / m.measured_packets() as f64
        };
        let saved = cpp(&unbatched) - cpp(&batched);
        let expected = BATCH_DISPATCH_CYCLES as f64 * (1.0 - 1.0 / 32.0);
        assert!(
            (saved - expected).abs() < 20.0,
            "batching should save ≈{expected:.0} cycles/packet, saved {saved:.0}"
        );
    }

    #[test]
    fn per_core_counters_reconcile_with_the_aggregate() {
        // Mirrors PR 1's per-stage reconciliation: per-core packet and
        // cycle counters must sum exactly to the aggregate measurement,
        // and the per-core hierarchy statistics to the hierarchy total.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let m = measure_sharded(&chain, ShardConfig::new(4), &wl, &cfg);

        assert_eq!(
            m.measured_packets(),
            cfg.total_packets - cfg.warmup_packets,
            "every non-warmup packet is measured on exactly one core"
        );
        let agg = m.aggregate_counters();
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        let mut misses = 0u64;
        for core in &m.per_core {
            cycles += core.busy_cycles();
            instructions += core.end_to_end.iter().map(|c| c.instructions).sum::<u64>();
            misses += core.end_to_end.iter().map(|c| c.l3_misses).sum::<u64>();
        }
        assert_eq!(agg.cycles, cycles);
        assert_eq!(agg.instructions, instructions);
        assert_eq!(agg.l3_misses, misses);

        let mem = m.aggregate_mem();
        let mut accesses = 0u64;
        for core in &m.per_core {
            accesses += core.mem.accesses;
        }
        assert_eq!(mem.accesses, accesses);
        assert!(accesses > 0, "the run exercised the shared hierarchy");
    }

    #[test]
    #[should_panic(expected = "too many stages")]
    fn overlong_chains_are_rejected_instead_of_aliasing_cores() {
        use castan_nf::{nf_by_id, NfId};
        let nine =
            castan_chain::NfChain::new("nop9", (0..9).map(|_| nf_by_id(NfId::Nop)).collect());
        let _ = ShardedDut::new(nine, ShardConfig::new(2), &quick());
    }

    #[test]
    fn uniform_traffic_spreads_over_all_cores() {
        let chain = chain_by_id(ChainId::Nop3);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let m = measure_sharded(&chain, ShardConfig::new(4), &wl, &cfg);
        for (c, core) in m.per_core.iter().enumerate() {
            assert!(
                core.packets() > 0,
                "core {c} received no packets under uniform traffic"
            );
        }
        assert!(
            m.bottleneck_share() < 0.45,
            "uniform traffic should spread: bottleneck share {}",
            m.bottleneck_share()
        );
    }
}

//! The sharded datapath: an RSS dispatcher in front of N simulated cores,
//! each running its own instance of an NF chain, all contending for one
//! shared L3.
//!
//! This is the multi-core analogue of [`ChainDut`](crate::chain::ChainDut):
//! packets are Toeplitz-hashed over their 5-tuple onto per-core receive
//! queues (`castan-runtime`), buffered into batches, and each core executes
//! its batch on private L1/L2 levels in front of the shared last-level
//! cache ([`castan_mem::MultiCoreHierarchy`]). Every core owns a *private*
//! chain instance — its own stage memories, handoff state and address
//! region — so cores never share NF state (exactly the share-nothing
//! RSS deployment model), but they do evict each other's lines from the
//! inclusive L3.
//!
//! **Cost model.** Per packet, each stage's retired instructions and
//! memory cycles are charged through the shared hierarchy as in the
//! chained DUT. The fixed forwarding overhead is split: the per-packet
//! share ([`PACKET_FORWARD_CYCLES`]) is paid by every packet, while the
//! dispatch share ([`BATCH_DISPATCH_CYCLES`]) is paid once per *batch* and
//! distributed exactly over the batch's packets (the first
//! `BATCH_DISPATCH_CYCLES mod n` packets carry the remainder cycle).
//! A 1-core, batch-of-1 sharded DUT therefore reproduces the unbatched
//! [`ChainDut`](crate::chain::ChainDut) byte-for-byte — counters, latency
//! samples and all — which is pinned by a test.
//!
//! **Throughput.** Cores run concurrently, so the aggregate forwarding
//! rate is bounded by the *busiest* core:
//! `aggregate Mpps = measured packets / busy time of the bottleneck core`.
//! Uniform traffic spreads flows evenly and scales near-linearly with the
//! core count; a queue-skew workload (all 5-tuples on one RSS queue)
//! saturates one core while the rest idle, collapsing the aggregate to
//! roughly the single-core rate. That collapse is the adversarial target
//! of `castan-core`'s queue-skew synthesis.
//!
//! **Mitigation.** With a [`MitigationConfig`] the DUT fights back: every
//! `epoch_packets` input packets it drains the in-flight batches, feeds
//! the epoch's per-entry loads (packet counts or execution cycles, per
//! [`LoadMetric`]) to a `castan-runtime::rebalance` policy, and installs
//! the rewritten indirection table (recording the schedule in
//! [`ShardedMeasurement::table_history`]); with key rotation enabled it
//! additionally installs the epoch's Toeplitz key
//! (`castan_runtime::rotate_key`), so an attacker who fingerprinted the
//! boot key must re-fingerprint mid-attack. The optional migration cost
//! model charges every moved flow's state pull through the shared L3 to
//! the destination core, and the optional work-stealing sink lets idle
//! cores execute batches from a core that has fallen far behind —
//! trading flow→core affinity for throughput. The `rss-mitigation`
//! experiment in `castan-experiments` evaluates all of it against static
//! and adaptive queue-skew attackers.
//!
//! **Noisy neighbour.** [`NoisyNeighborDut`] is the measurement side of
//! the cross-core contention attack (`castan-xcore`): victim traffic is
//! dispatched over every queue except the attacker core's
//! ([`victim_table`]), and between executed batches the attacker core
//! replays a line list ([`NeighborReplay`]) — an eviction plan's colliding
//! lines, or an equal-rate random control — through its private levels
//! into the shared L3, back-invalidating the victims' lines. Replay cycles
//! are attributed to the attacker (never to victim busy time), so
//! [`ShardedMeasurement::aggregate_mpps`] remains the *victims'*
//! throughput and per-core hit/miss deltas isolate the cross-core
//! eviction. With no replay installed the DUT is byte-identical to
//! [`ShardedDut`] (pinned by tests).

use castan_chain::{chain_page_anchors, core_stage_base, NfChain, StageHandoff};
use castan_ir::{DataMemory, Interpreter, RunLimits};
use castan_mem::{HierarchyConfig, HierarchyStats, MultiCoreHierarchy};
use castan_runtime::{
    rebalanced_table, rotate_key, Batcher, LoadMetric, LoadTracker, RebalancePolicy,
};
use castan_runtime::{record_key_rotation, record_rebalance, DispatchInstrument};
use castan_runtime::{RssConfig, RssDispatcher};
use castan_telemetry::detector::{
    Alarm, Detector, DetectorConfig, SIG_CYCLES_PER_PACKET, SIG_EPOCH_PACKETS,
    SIG_INSTRUCTIONS_PER_PACKET, SIG_MAX_CORE_SHARE, SIG_MISSES_PER_PACKET,
};
use castan_telemetry::{EventKind, Histogram, Registry};
use castan_workload::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use castan_packet::Packet;

use crate::cpu::{MultiCoreCpu, PacketCounters};
use crate::dut::{Measurement, MeasurementConfig};
use crate::stats::Cdf;
use crate::{
    BATCH_DISPATCH_CYCLES, FORWARDING_OVERHEAD_INSTRUCTIONS, FORWARDING_OVERHEAD_MISSES,
    PACKET_FORWARD_CYCLES, WIRE_LATENCY_NS,
};

/// Address-space stride between cores (re-exported from `castan-chain`,
/// where the canonical per-core/per-stage layout now lives so that the
/// cross-core eviction planner of `castan-xcore` and this DUT derive their
/// address views from one definition). Each core's chain instance occupies
/// [`core_stage_base`]`(core, stage)`, so distinct cores (and distinct
/// stages within a core) never alias in the shared cache.
pub use castan_chain::CORE_ADDR_STRIDE;

/// Cache lines of per-flow NF state (NAT translation entry, LB assignment,
/// connection bookkeeping) pulled across when a rebalance moves a flow's
/// indirection entry to another core. Each line is priced at the shared-L3
/// hit latency: the state was resident on the old core, so the new core
/// fetches it through the inclusive L3 rather than from DRAM.
pub const MIGRATION_LINES_PER_FLOW: u64 = 8;

/// Fixed cycles a thief core pays per stolen batch: the cross-core ring
/// doorbell plus pulling the victim queue's descriptors and packet headers
/// through the shared L3.
pub const STEAL_BATCH_CYCLES: u64 = 1_200;

/// A batch is stolen only when its home core's accumulated busy time
/// exceeds the idlest core's by this many cycles — enough to never trigger
/// under balanced traffic, and a small fraction of a skewed core's backlog.
pub const STEAL_THRESHOLD_CYCLES: u64 = 50_000;

/// Cycles each core pays per detector poll (once per sealed telemetry
/// epoch while online detection is active): the control plane reading the
/// core's epoch counters through the shared hierarchy plus the threshold
/// comparisons. Charged to every core's busy time — the honestly-charged
/// detection overhead the `detect` experiment reports.
pub const DETECT_POLL_CYCLES: u64 = 2_000;

/// Passive telemetry recording on the sharded DUT: epoch length of the
/// sealed series and the event-ring size. Attaching telemetry never
/// perturbs the measurement — sealing is observational (no drains, no RNG
/// draws, no charged cycles), which a pin test asserts byte-for-byte.
#[derive(Clone, Copy, Debug)]
pub struct TelemetryConfig {
    /// Telemetry epoch length in input packets: every `epoch_packets`
    /// packets the per-core accumulators are sealed into the registry's
    /// epoch series. Unlike mitigation epochs, telemetry boundaries do
    /// *not* drain in-flight batches.
    pub epoch_packets: usize,
    /// Capacity of the bounded event ring.
    pub event_capacity: usize,
}

impl TelemetryConfig {
    /// Telemetry sealed every `epoch_packets` packets with the default
    /// event-ring capacity.
    pub fn new(epoch_packets: usize) -> Self {
        assert!(epoch_packets > 0, "epochs must contain packets");
        TelemetryConfig {
            epoch_packets,
            event_capacity: castan_telemetry::DEFAULT_EVENT_CAPACITY,
        }
    }
}

/// Online detection on the sharded DUT: a [`Detector`] polls the registry
/// at every sealed telemetry epoch (each poll charges every core
/// [`DETECT_POLL_CYCLES`] of busy time), and — in the closed loop — the
/// first alarm activates `response` as the run's mitigation from the next
/// epoch boundary on, instead of the mitigation being configured up front.
#[derive(Clone, Copy, Debug)]
pub struct DetectionConfig {
    /// Thresholds over the learned benign baseline.
    pub detector: DetectorConfig,
    /// Closed-loop response: the mitigation to activate at the first
    /// alarm (`None` = detect-only). Its `epoch_packets` must equal the
    /// telemetry epoch length so rebalance boundaries align with polls.
    pub response: Option<MitigationConfig>,
}

/// What online detection did during one run.
#[derive(Clone, Debug, Default)]
pub struct DetectionReport {
    /// Every alarm raised, in epoch order.
    pub alarms: Vec<Alarm>,
    /// The sealed epoch whose alarm activated the closed-loop response
    /// (`None`: no alarm, or no response configured).
    pub activated_epoch: Option<u64>,
    /// Total detector-poll cycles charged across all cores.
    pub overhead_cycles: u64,
    /// Detector polls performed.
    pub polls: u64,
}

impl DetectionReport {
    /// Epochs of data needed until the first alarm (`None` = never
    /// flagged).
    pub fn epochs_to_detect(&self) -> Option<u64> {
        self.alarms.first().map(|a| a.epoch + 1)
    }
}

/// Queue-skew mitigation run by the sharded DUT: epoch-based indirection
/// table rebalancing, optionally with an explicit flow-migration cost
/// model and a work-stealing sink.
#[derive(Clone, Copy, Debug)]
pub struct MitigationConfig {
    /// Epoch length in input packets. At every epoch boundary the in-flight
    /// batches are drained, the rebalance policy sees the epoch's per-entry
    /// loads, and a new indirection table (if any) takes effect.
    pub epoch_packets: usize,
    /// The table rewrite policy.
    pub policy: RebalancePolicy,
    /// Which per-entry load signal the policy weighs: dispatched packet
    /// counts (the classic driver view) or execution cycles (which stop
    /// under-weighing heavy flows).
    pub metric: LoadMetric,
    /// Rotate the Toeplitz key at every epoch boundary
    /// (`castan_runtime::rotate_key` applied to the boot key): every flow's
    /// queue re-randomises per epoch, so a skew attacker who fingerprinted
    /// the boot key loses its steering from epoch 1 on.
    pub key_rotation: bool,
    /// Charge the flow-state move of every rebalanced flow: each flow whose
    /// entry changes queues costs the *destination* core
    /// [`MIGRATION_LINES_PER_FLOW`] shared-L3 hits of busy time.
    pub migration_cost: bool,
    /// Enable the work-stealing sink: a full batch whose home core is more
    /// than [`STEAL_THRESHOLD_CYCLES`] busier than the idlest core executes
    /// on that idlest core instead (paying [`STEAL_BATCH_CYCLES`]). This
    /// breaks flow→core affinity — the price real work-stealing runtimes
    /// pay — so it is off unless explicitly requested.
    pub work_stealing: bool,
}

impl MitigationConfig {
    /// Plain epoch rebalancing: no migration cost, no work stealing.
    pub fn rebalance(epoch_packets: usize, policy: RebalancePolicy) -> Self {
        assert!(epoch_packets > 0, "epochs must contain packets");
        MitigationConfig {
            epoch_packets,
            policy,
            metric: LoadMetric::Packets,
            key_rotation: false,
            migration_cost: false,
            work_stealing: false,
        }
    }

    /// Adds the flow-migration cost model.
    pub fn with_migration_cost(self) -> Self {
        MitigationConfig {
            migration_cost: true,
            ..self
        }
    }

    /// Adds the work-stealing sink.
    pub fn with_work_stealing(self) -> Self {
        MitigationConfig {
            work_stealing: true,
            ..self
        }
    }

    /// Weighs entries by execution cycles instead of packet counts.
    pub fn with_cycle_metric(self) -> Self {
        MitigationConfig {
            metric: LoadMetric::Cycles,
            ..self
        }
    }

    /// Adds per-epoch Toeplitz key rotation.
    pub fn with_key_rotation(self) -> Self {
        MitigationConfig {
            key_rotation: true,
            ..self
        }
    }
}

/// Sharded-runtime configuration.
#[derive(Clone, Copy, Debug)]
pub struct ShardConfig {
    /// Number of simulated cores (= RSS queues).
    pub n_cores: usize,
    /// Packets per dispatch batch.
    pub batch_size: usize,
    /// The NIC's RSS setup (key + indirection table).
    pub rss: RssConfig,
    /// Optional queue-skew mitigation; `None` reproduces the plain sharded
    /// runtime byte for byte.
    pub mitigation: Option<MitigationConfig>,
    /// Premap every page of the deployment's data regions at boot, in the
    /// canonical `castan_chain::chain_page_anchors` order — the
    /// simulation's equivalent of DPDK reserving its hugepages at EAL init.
    /// Frame assignment (and therefore every line's hidden L3 slice)
    /// becomes a pure function of the boot seed and the layout, which is
    /// what lets `castan-xcore`'s premapped bucket oracle predict this
    /// DUT's (slice, set) buckets exactly. Off by default: premapping
    /// changes the frame order, so it would perturb the pinned plain-DUT
    /// results.
    pub premap_pages: bool,
}

impl ShardConfig {
    /// The default runtime for `n_cores` cores: DPDK-style bursts of 32,
    /// no mitigation.
    pub fn new(n_cores: usize) -> Self {
        ShardConfig {
            n_cores,
            batch_size: 32,
            rss: RssConfig::for_queues(n_cores),
            mitigation: None,
            premap_pages: false,
        }
    }

    /// A runtime with no batching (batch of one) — the configuration that
    /// reproduces the unbatched [`crate::chain::ChainDut`] exactly when
    /// `n_cores == 1`.
    pub fn unbatched(n_cores: usize) -> Self {
        ShardConfig {
            batch_size: 1,
            ..Self::new(n_cores)
        }
    }

    /// The same runtime with a mitigation enabled.
    pub fn with_mitigation(self, mitigation: MitigationConfig) -> Self {
        ShardConfig {
            mitigation: Some(mitigation),
            ..self
        }
    }

    /// The same runtime with canonical page premapping at boot.
    pub fn with_premapped_pages(self) -> Self {
        ShardConfig {
            premap_pages: true,
            ..self
        }
    }
}

/// Everything measured on one core during a sharded run.
#[derive(Clone, Debug, Default)]
pub struct CoreMeasurement {
    /// End-to-end latency samples of the packets this core forwarded.
    pub latency_ns: Vec<f64>,
    /// Per-packet end-to-end counters (stage sum + forwarding + dispatch
    /// share).
    pub end_to_end: Vec<PacketCounters>,
    /// Per-packet service time in nanoseconds.
    pub service_ns: Vec<f64>,
    /// Packets dropped mid-chain on this core during the measured window.
    pub dropped: usize,
    /// Packets dispatched to this core's queue over the whole run
    /// (including warm-up), counted at dispatch time — with work stealing
    /// a batch may *execute* elsewhere, so this can differ from
    /// [`CoreMeasurement::packets`] even ignoring warm-up.
    pub dispatched: usize,
    /// Cycles this core spent pulling migrated flow state through the
    /// shared L3 after rebalances (whole run; zero without the migration
    /// cost model).
    pub migration_cycles: u64,
    /// Distinct flows whose state this core pulled across at rebalances.
    pub migrated_flows: usize,
    /// Cycles this core spent on stolen-batch overhead (whole run; zero
    /// without work stealing).
    pub steal_cycles: u64,
    /// Batches this core stole from busier cores.
    pub stolen_batches: usize,
    /// Cycles this core spent on online detector polls (whole run; zero
    /// unless a [`DetectionConfig`] is set — passive telemetry is free).
    pub detection_cycles: u64,
    /// This core's view of the shared memory hierarchy (whole run,
    /// including warm-up).
    pub mem: HierarchyStats,
}

impl CoreMeasurement {
    /// Measured packets processed by this core.
    pub fn packets(&self) -> usize {
        self.end_to_end.len()
    }

    /// Total cycles this core spent serving measured packets plus its
    /// mitigation and detection overheads (flow migration, steal
    /// bookkeeping, detector polls). Cores run concurrently, so the
    /// busiest core bounds aggregate throughput.
    pub fn busy_cycles(&self) -> u64 {
        self.end_to_end.iter().map(|c| c.cycles).sum::<u64>()
            + self.migration_cycles
            + self.steal_cycles
            + self.detection_cycles
    }
}

/// The result of one sharded run: per-core measurements plus aggregate
/// views.
#[derive(Clone, Debug)]
pub struct ShardedMeasurement {
    /// One measurement per core, indexed by core id.
    pub per_core: Vec<CoreMeasurement>,
    /// Batch size the run used.
    pub batch_size: usize,
    /// Clock frequency (Hz) of the simulated cores.
    pub clock_hz: u64,
    /// The indirection table active during each rebalance epoch
    /// (`table_history[e]` served epoch `e`; entry 0 is always the
    /// boot-time round-robin table). A single entry when no mitigation is
    /// configured. This is exactly what an adaptive attacker learns from a
    /// probe round and re-steers against.
    pub table_history: Vec<Vec<u32>>,
}

impl ShardedMeasurement {
    /// Number of cores.
    pub fn n_cores(&self) -> usize {
        self.per_core.len()
    }

    /// Total measured packets over all cores.
    pub fn measured_packets(&self) -> usize {
        self.per_core.iter().map(CoreMeasurement::packets).sum()
    }

    /// Total packets dropped mid-chain over all cores.
    pub fn dropped(&self) -> usize {
        self.per_core.iter().map(|c| c.dropped).sum()
    }

    /// Exact sum of every core's per-packet counters.
    pub fn aggregate_counters(&self) -> PacketCounters {
        let mut total = PacketCounters::default();
        for core in &self.per_core {
            for c in &core.end_to_end {
                total.cycles += c.cycles;
                total.instructions += c.instructions;
                total.loads += c.loads;
                total.stores += c.stores;
                total.l3_misses += c.l3_misses;
            }
        }
        total
    }

    /// Sum of every core's memory-hierarchy statistics.
    pub fn aggregate_mem(&self) -> HierarchyStats {
        let mut total = HierarchyStats::default();
        for core in &self.per_core {
            total.merge(&core.mem);
        }
        total
    }

    /// The core with the largest busy time (the throughput bottleneck).
    pub fn bottleneck_core(&self) -> usize {
        (0..self.n_cores())
            .max_by_key(|&c| self.per_core[c].busy_cycles())
            .unwrap_or(0)
    }

    /// Fraction of measured packets handled by the busiest-loaded core
    /// (1/n_cores under perfect balance, → 1.0 under full skew).
    pub fn bottleneck_share(&self) -> f64 {
        let total = self.measured_packets();
        if total == 0 {
            return 0.0;
        }
        let max = self
            .per_core
            .iter()
            .map(CoreMeasurement::packets)
            .max()
            .unwrap_or(0);
        max as f64 / total as f64
    }

    /// Aggregate forwarding rate in Mpps: all cores run concurrently, so
    /// the run completes when the bottleneck core finishes its share.
    pub fn aggregate_mpps(&self) -> f64 {
        let bottleneck = &self.per_core[self.bottleneck_core()];
        let busy_cycles = bottleneck.busy_cycles();
        if busy_cycles == 0 {
            return 0.0;
        }
        let clock_ghz = self.clock_hz as f64 / 1e9;
        let busy_ns = busy_cycles as f64 / clock_ghz;
        self.measured_packets() as f64 / busy_ns * 1e3
    }

    /// Total flows whose state was migrated by rebalances.
    pub fn migrated_flows(&self) -> usize {
        self.per_core.iter().map(|c| c.migrated_flows).sum()
    }

    /// Total batches executed away from their home queue by work stealing.
    pub fn stolen_batches(&self) -> usize {
        self.per_core.iter().map(|c| c.stolen_batches).sum()
    }

    /// One end-to-end latency CDF per core (empty CDFs — all-NaN
    /// quantiles — for cores that served no measured packets, e.g. the
    /// idle cores under full queue skew).
    pub fn per_core_latency_cdfs(&self) -> Vec<Cdf> {
        self.per_core
            .iter()
            .map(|c| Cdf::new(c.latency_ns.clone()))
            .collect()
    }

    /// A merged single-stream [`Measurement`] view (per-core samples
    /// concatenated in core order), so the CDF tooling applies unchanged.
    pub fn as_measurement(&self) -> Measurement {
        let mut m = Measurement {
            latency_ns: Vec::new(),
            counters: Vec::new(),
            service_ns: Vec::new(),
        };
        for core in &self.per_core {
            m.latency_ns.extend_from_slice(&core.latency_ns);
            m.counters.extend_from_slice(&core.end_to_end);
            m.service_ns.extend_from_slice(&core.service_ns);
        }
        m
    }
}

/// One core's private chain instance: per-stage data memories and handoff
/// state.
struct CoreState {
    mems: Vec<DataMemory>,
    handoffs: Vec<Box<dyn StageHandoff>>,
}

/// One core's telemetry accumulator for the open epoch: plain counters the
/// hot path bumps, handed to the registry only at epoch boundaries. The
/// `packets`/`cycles`/`l3_misses` view covers *every* executed packet
/// (warm-up included — the detector judges steady-state behaviour, not the
/// measurement window); the `measured_*` view covers exactly the packets
/// in [`CoreMeasurement::end_to_end`], so registry totals reconcile with
/// [`ShardedMeasurement::aggregate_counters`] to the cycle.
#[derive(Clone, Debug, Default)]
struct CoreEpochStats {
    packets: u64,
    cycles: u64,
    instructions: u64,
    l3_misses: u64,
    measured_packets: u64,
    measured_cycles: u64,
    measured_instructions: u64,
    measured_l3_misses: u64,
    latency: Histogram,
}

/// Seals one telemetry epoch into the registry: per-core counters and
/// latency histograms, whole-DUT totals, the detector's gauge signals, the
/// epoch-boundary event — then advances the registry epoch and resets the
/// accumulators. Purely observational: no drains, no RNG draws, no charged
/// cycles.
fn seal_telemetry(
    reg: &mut Registry,
    stats: &mut [CoreEpochStats],
    dispatched: &mut [u64],
    entries: Option<&mut DispatchInstrument>,
) {
    let mut packets = 0u64;
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut misses = 0u64;
    let mut measured_packets = 0u64;
    let mut measured_cycles = 0u64;
    let mut measured_instructions = 0u64;
    let mut measured_misses = 0u64;
    for (c, s) in stats.iter_mut().enumerate() {
        if s.packets > 0 {
            reg.count(&format!("core{c}.packets"), s.packets);
            reg.count(&format!("core{c}.cycles"), s.cycles);
            reg.count(&format!("core{c}.l3_misses"), s.l3_misses);
        }
        if s.measured_packets > 0 {
            reg.count(&format!("core{c}.measured_packets"), s.measured_packets);
            reg.count(&format!("core{c}.measured_cycles"), s.measured_cycles);
        }
        if s.latency.count() > 0 {
            reg.merge_histogram(&format!("core{c}.latency_ns"), &s.latency);
        }
        packets += s.packets;
        cycles += s.cycles;
        instructions += s.instructions;
        misses += s.l3_misses;
        measured_packets += s.measured_packets;
        measured_cycles += s.measured_cycles;
        measured_instructions += s.measured_instructions;
        measured_misses += s.measured_l3_misses;
        *s = CoreEpochStats::default();
    }
    reg.count("exec.packets", packets);
    reg.count("exec.cycles", cycles);
    reg.count("exec.l3_misses", misses);
    reg.count("exec.measured_packets", measured_packets);
    reg.count("exec.measured_cycles", measured_cycles);
    reg.count("exec.measured_instructions", measured_instructions);
    reg.count("exec.measured_l3_misses", measured_misses);
    let disp: u64 = dispatched.iter().sum();
    reg.count("dispatch.packets", disp);
    if disp > 0 {
        let max = dispatched.iter().copied().max().unwrap_or(0);
        reg.gauge(SIG_MAX_CORE_SHARE, max as f64 / disp as f64);
    }
    if let Some(e) = entries {
        e.seal_into(reg);
    }
    reg.gauge(SIG_EPOCH_PACKETS, packets as f64);
    if packets > 0 {
        reg.gauge(SIG_MISSES_PER_PACKET, misses as f64 / packets as f64);
        reg.gauge(SIG_CYCLES_PER_PACKET, cycles as f64 / packets as f64);
        reg.gauge(
            SIG_INSTRUCTIONS_PER_PACKET,
            instructions as f64 / packets as f64,
        );
    }
    dispatched.fill(0);
    reg.event(EventKind::EpochBoundary, format!("packets={packets}"));
    reg.seal_epoch();
}

/// The noisy-neighbour replay a [`NoisyNeighborDut`] installs: one core
/// cyclically touching a fixed line list between executed batches.
#[derive(Clone, Debug)]
pub struct NeighborReplay {
    /// The core running the replay (receives no victim traffic).
    pub attacker_core: usize,
    /// Absolute virtual line addresses to touch, in replay order — an
    /// `castan-xcore` eviction plan's `replay_lines`, or an equal-rate
    /// random control.
    pub lines: Vec<u64>,
    /// Lines touched between two consecutive executed batches (the replay
    /// cursor wraps around `lines`).
    pub lines_per_batch: usize,
}

/// Replay bookkeeping of one run.
#[derive(Clone, Debug, Default)]
struct NeighborState {
    cursor: usize,
    touches: u64,
    cycles: u64,
}

/// The sharded device under test.
pub struct ShardedDut {
    chain: NfChain,
    shard: ShardConfig,
    cpu: MultiCoreCpu,
    cores: Vec<CoreState>,
    dispatcher: RssDispatcher,
    limits: RunLimits,
    /// Boot-time indirection table override (e.g. [`victim_table`]); `None`
    /// boots the round-robin fill, byte-identical to the plain DUT.
    boot_table: Option<Vec<u32>>,
    neighbor: Option<NeighborReplay>,
    neighbor_state: NeighborState,
    telemetry: Option<TelemetryConfig>,
    detection: Option<DetectionConfig>,
    last_registry: Option<Registry>,
    last_detection: Option<DetectionReport>,
}

impl ShardedDut {
    /// Boots a sharded DUT running one instance of `chain` per core on the
    /// Xeon E5-2667v2 profile (per-core L1/L2, shared L3).
    pub fn new(chain: NfChain, shard: ShardConfig, cfg: &MeasurementConfig) -> Self {
        assert!(shard.n_cores > 0, "need at least one core");
        assert!(
            (chain.len() as u64) * castan_chain::STAGE_ADDR_STRIDE <= CORE_ADDR_STRIDE,
            "chain has too many stages for the per-core address stride \
             ({} stages; at most {} fit without aliasing the next core)",
            chain.len(),
            CORE_ADDR_STRIDE / castan_chain::STAGE_ADDR_STRIDE,
        );
        let mut hierarchy = MultiCoreHierarchy::new(
            HierarchyConfig::xeon_e5_2667v2(),
            cfg.boot_seed,
            shard.n_cores,
        );
        if shard.premap_pages {
            let page_bits = hierarchy.config().page_bits;
            for anchor in chain_page_anchors(&chain, shard.n_cores, page_bits) {
                hierarchy.map_page(anchor);
            }
        }
        let cores = (0..shard.n_cores)
            .map(|_| CoreState {
                mems: chain
                    .stages
                    .iter()
                    .map(|s| s.nf.initial_memory.clone())
                    .collect(),
                handoffs: chain.handoffs(),
            })
            .collect();
        let dispatcher = RssDispatcher::new(shard.rss);
        assert_eq!(
            dispatcher.n_queues(),
            shard.n_cores,
            "one RSS queue per core"
        );
        ShardedDut {
            chain,
            cpu: MultiCoreCpu::new(hierarchy),
            cores,
            dispatcher,
            limits: RunLimits::default(),
            shard,
            boot_table: None,
            neighbor: None,
            neighbor_state: NeighborState::default(),
            telemetry: None,
            detection: None,
            last_registry: None,
            last_detection: None,
        }
    }

    /// Attaches passive telemetry: every subsequent run records its
    /// epoch-indexed series into a fresh [`Registry`], readable afterwards
    /// via [`ShardedDut::telemetry`]. Recording is observational — the
    /// measurement stays byte-identical to a run without telemetry
    /// (pinned by test).
    pub fn attach_telemetry(&mut self, cfg: TelemetryConfig) {
        self.telemetry = Some(cfg);
    }

    /// Detaches telemetry (and with it any detection), restoring the
    /// plain DUT.
    pub fn detach_telemetry(&mut self) {
        self.telemetry = None;
        self.detection = None;
        self.last_registry = None;
        self.last_detection = None;
    }

    /// Enables (or disables) online detection on the attached telemetry
    /// stream. Panics if no telemetry is attached, or if a closed-loop
    /// response's epoch length disagrees with the telemetry epochs.
    pub fn set_detection(&mut self, detection: Option<DetectionConfig>) {
        if let Some(d) = &detection {
            let t = self
                .telemetry
                .expect("attach_telemetry before set_detection");
            if let Some(r) = d.response {
                assert_eq!(
                    r.epoch_packets, t.epoch_packets,
                    "closed-loop response epochs must match telemetry epochs"
                );
            }
        }
        self.detection = detection;
    }

    /// The last run's telemetry registry (`None` before the first
    /// telemetry-enabled run).
    pub fn telemetry(&self) -> Option<&Registry> {
        self.last_registry.as_ref()
    }

    /// Takes ownership of the last run's telemetry registry.
    pub fn take_telemetry(&mut self) -> Option<Registry> {
        self.last_registry.take()
    }

    /// The last run's detection report (`None` unless detection was on).
    pub fn detection_report(&self) -> Option<&DetectionReport> {
        self.last_detection.as_ref()
    }

    /// The chain this DUT runs (one instance per core).
    pub fn chain(&self) -> &NfChain {
        &self.chain
    }

    /// The dispatcher in front of the cores.
    pub fn dispatcher(&self) -> &RssDispatcher {
        &self.dispatcher
    }

    /// Clock frequency (Hz) of the simulated cores — what a caller that
    /// aggregates several DUTs (the cluster tier) needs to convert busy
    /// cycles to time even for a node that served no packets.
    pub fn clock_hz(&self) -> u64 {
        self.cpu.clock_hz()
    }

    /// Installs a boot-time indirection table (validated against the RSS
    /// config) that every subsequent [`ShardedDut::run`] starts from — the
    /// deployment knob ([`victim_table`]) that keeps a core out of RSS.
    /// `None` restores the plain round-robin boot table.
    pub fn set_boot_table(&mut self, table: Option<Vec<u32>>) {
        self.dispatcher = match &table {
            Some(t) => RssDispatcher::with_table(self.shard.rss, t.clone()),
            None => RssDispatcher::new(self.shard.rss),
        };
        self.boot_table = table;
    }

    /// Installs (or clears) the noisy-neighbour replay; see
    /// [`NeighborReplay`]. With `None` the DUT is byte-identical to a plain
    /// sharded DUT.
    pub fn set_neighbor(&mut self, neighbor: Option<NeighborReplay>) {
        if let Some(n) = &neighbor {
            assert!(
                n.attacker_core < self.shard.n_cores,
                "attacker core out of range"
            );
        }
        self.neighbor = neighbor;
        self.neighbor_state = NeighborState::default();
    }

    /// `(touches, cycles)` the neighbour replay spent during the last run.
    pub fn neighbor_cost(&self) -> (u64, u64) {
        (self.neighbor_state.touches, self.neighbor_state.cycles)
    }

    /// Profiles the victim's per-line heat: replays `workload` exactly like
    /// [`ShardedDut::run`] while counting, per virtual cache line, how many
    /// accesses `victim_core` issues (warm-up included — heat is about the
    /// steady state of the caches, not the measurement window). The
    /// returned pairs are hottest-first and feed
    /// `castan_xcore::HotLineMap`.
    pub fn profile_heat(
        &mut self,
        workload: &Workload,
        cfg: &MeasurementConfig,
        victim_core: usize,
    ) -> Vec<(u64, u64)> {
        self.cpu.hierarchy_mut().track_heat(victim_core);
        self.run_without_neighbor(workload, cfg)
    }

    /// [`ShardedDut::profile_heat`] over every core at once: the striped
    /// per-core address windows keep the counts unambiguous, so one run
    /// profiles every victim core of a deployment.
    pub fn profile_heat_all(
        &mut self,
        workload: &Workload,
        cfg: &MeasurementConfig,
    ) -> Vec<(u64, u64)> {
        self.cpu.hierarchy_mut().track_heat_all();
        self.run_without_neighbor(workload, cfg)
    }

    /// Runs the workload with any installed neighbour replay suspended and
    /// returns the recorded heat: a profile is about what the *victims*
    /// touch, and counting the attacker's own replay lines would let the
    /// plan rank buckets by the attacker's self-collisions.
    fn run_without_neighbor(
        &mut self,
        workload: &Workload,
        cfg: &MeasurementConfig,
    ) -> Vec<(u64, u64)> {
        let neighbor = self.neighbor.take();
        let _ = self.run(workload, cfg);
        self.neighbor = neighbor;
        self.cpu.hierarchy_mut().take_heat()
    }

    /// Runs the neighbour replay slice that follows one executed batch:
    /// touches the next `lines_per_batch` lines of the installed replay,
    /// charging their cycles to the attacker core (in the shared hierarchy
    /// and the replay counters — never to victim busy time).
    fn neighbor_replay(&mut self) {
        let Some(n) = &self.neighbor else {
            return;
        };
        if n.lines.is_empty() {
            return;
        }
        let state = &mut self.neighbor_state;
        let hier = self.cpu.hierarchy_mut();
        for _ in 0..n.lines_per_batch {
            let addr = n.lines[state.cursor];
            state.cursor = (state.cursor + 1) % n.lines.len();
            state.cycles += hier.read(n.attacker_core, addr).cycles;
            state.touches += 1;
        }
    }

    /// Replays a workload through the dispatcher and all cores, measuring
    /// per-core and aggregate behaviour. Each call starts from freshly
    /// initialised chain instances, cold caches and the boot-time
    /// round-robin indirection table; state then persists across the run,
    /// exactly like the unbatched DUTs.
    ///
    /// With a [`MitigationConfig`], every `epoch_packets` input packets the
    /// DUT drains the in-flight batches, hands the epoch's per-entry loads
    /// to the rebalance policy, and installs the rewritten table; the table
    /// active in each epoch is recorded in
    /// [`ShardedMeasurement::table_history`]. When the migration cost model
    /// is on, each flow whose entry changed queues charges the destination
    /// core [`MIGRATION_LINES_PER_FLOW`] shared-L3 hits of busy time. With
    /// work stealing, a full batch whose home core has fallen
    /// [`STEAL_THRESHOLD_CYCLES`] behind the idlest core executes there
    /// instead (on that core's chain instance — affinity is broken, which
    /// is the point), paying [`STEAL_BATCH_CYCLES`].
    pub fn run(&mut self, workload: &Workload, cfg: &MeasurementConfig) -> ShardedMeasurement {
        assert!(!workload.is_empty(), "cannot replay an empty workload");
        let n_cores = self.shard.n_cores;
        for core in &mut self.cores {
            for (mem, stage) in core.mems.iter_mut().zip(&self.chain.stages) {
                *mem = stage.nf.initial_memory.clone();
            }
            for h in &mut core.handoffs {
                h.reset();
            }
        }
        self.cpu.flush_caches();
        self.cpu.reset_stats();
        self.neighbor_state = NeighborState::default();
        // A previous mitigated run may have rewritten the table or rotated
        // the key; every run starts from the boot-time dispatcher (the
        // round-robin fill, or the installed boot-table override).
        self.dispatcher = match &self.boot_table {
            Some(t) => RssDispatcher::with_table(self.shard.rss, t.clone()),
            None => RssDispatcher::new(self.shard.rss),
        };

        // One measurement-noise RNG per core; core 0 uses the seed of the
        // single-core DUTs so the 1-core sharded run is bit-identical.
        let mut rngs: Vec<StdRng> = (0..n_cores)
            .map(|c| {
                StdRng::seed_from_u64(cfg.seed ^ (c as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            })
            .collect();
        let clock_ghz = self.cpu.clock_hz() as f64 / 1e9;
        let mut out: Vec<CoreMeasurement> =
            (0..n_cores).map(|_| CoreMeasurement::default()).collect();
        // Whole-run busy time per core (warm-up included): the work-stealing
        // trigger compares these, and mitigation overheads accrue here too.
        let mut busy = vec![0u64; n_cores];
        let mut table_history = vec![self.dispatcher.table().to_vec()];
        // The closed loop may install a mitigation mid-run (first detector
        // alarm), so the active mitigation and tracker are run-local state.
        let mut mitigation = self.shard.mitigation;
        let mut tracker = mitigation.map(|_| LoadTracker::new(self.shard.rss.table_size));
        let mut epoch = 0u64;

        // Telemetry state: all `None`/empty without an attached registry,
        // so the plain path is exactly the pre-telemetry code. The hot
        // path accumulates into plain per-core structs; the registry (and
        // its name allocations) is touched only at epoch boundaries.
        let telemetry_cfg = self.telemetry;
        let mut registry = telemetry_cfg.map(|t| Registry::with_event_capacity(t.event_capacity));
        let mut entry_instr = registry
            .as_ref()
            .map(|_| DispatchInstrument::new(self.shard.rss.table_size));
        let mut epoch_stats: Vec<CoreEpochStats> = if registry.is_some() {
            (0..n_cores).map(|_| CoreEpochStats::default()).collect()
        } else {
            Vec::new()
        };
        let mut dispatched_epoch = vec![0u64; n_cores];
        let detection_cfg = if registry.is_some() {
            self.detection
        } else {
            None
        };
        let mut detector = detection_cfg.map(|d| Detector::new(d.detector));
        let mut detection_report = detection_cfg.map(|_| DetectionReport::default());

        let mut batcher: Batcher<(usize, Option<usize>, Packet)> =
            Batcher::new(n_cores, self.shard.batch_size);
        for i in 0..cfg.total_packets {
            if let (Some(m), Some(t)) = (mitigation, tracker.as_mut()) {
                if i > 0 && i % m.epoch_packets == 0 {
                    // Epoch boundary: drain in-flight batches first, so no
                    // packet dispatched under the old table executes after
                    // the rewrite.
                    for (queue, batch) in batcher.flush() {
                        busy[queue] += exec_batch(
                            &self.chain,
                            &mut self.cpu,
                            &mut self.cores[queue],
                            self.limits,
                            queue,
                            &batch,
                            cfg,
                            &mut rngs[queue],
                            &mut out[queue],
                            clock_ghz,
                            Some(&mut *t),
                            epoch_stats.get_mut(queue),
                        );
                        self.neighbor_replay();
                    }
                    epoch += 1;
                    if m.key_rotation {
                        self.dispatcher
                            .set_key(rotate_key(&self.shard.rss.key, epoch));
                        if let Some(reg) = registry.as_mut() {
                            record_key_rotation(reg, epoch);
                        }
                    }
                    let old = self.dispatcher.table().to_vec();
                    let new = rebalanced_table(m.policy, t.loads(m.metric), &old, n_cores, epoch);
                    if new != old {
                        if let Some(reg) = registry.as_mut() {
                            record_rebalance(reg, &old, &new);
                        }
                        if m.migration_cost {
                            let l3_hit = self.cpu.hierarchy().config().latencies.l3;
                            let moved = t.moved_flows_per_queue(&old, &new, n_cores);
                            for (q, &flows) in moved.iter().enumerate() {
                                let cycles = flows as u64 * MIGRATION_LINES_PER_FLOW * l3_hit;
                                out[q].migration_cycles += cycles;
                                out[q].migrated_flows += flows;
                                busy[q] += cycles;
                            }
                            if let Some(reg) = registry.as_mut() {
                                let flows: usize = moved.iter().sum();
                                let cycles: u64 = flows as u64 * MIGRATION_LINES_PER_FLOW * l3_hit;
                                reg.count("migration.flows", flows as u64);
                                reg.count("migration.cycles", cycles);
                                reg.event(EventKind::Migration, format!("flows={flows}"));
                            }
                        }
                        self.dispatcher.set_table(new);
                    }
                    table_history.push(self.dispatcher.table().to_vec());
                    t.reset();
                }
            }

            // Telemetry epoch boundary: seal the per-core accumulators
            // into the registry (observational — no drain; any mitigation
            // boundary work above already landed in this epoch's series)
            // and run the detector poll. The closed loop activates the
            // configured response at the first alarm, so the *next*
            // mitigation boundary is the first one that rebalances.
            if let (Some(t), Some(reg)) = (telemetry_cfg, registry.as_mut()) {
                if i > 0 && i % t.epoch_packets == 0 {
                    seal_telemetry(
                        reg,
                        &mut epoch_stats,
                        &mut dispatched_epoch,
                        entry_instr.as_mut(),
                    );
                    if let (Some(det), Some(d), Some(rep)) = (
                        detection_cfg.as_ref(),
                        detector.as_mut(),
                        detection_report.as_mut(),
                    ) {
                        for (c, b) in busy.iter_mut().enumerate() {
                            *b += DETECT_POLL_CYCLES;
                            out[c].detection_cycles += DETECT_POLL_CYCLES;
                        }
                        rep.polls += 1;
                        rep.overhead_cycles += DETECT_POLL_CYCLES * n_cores as u64;
                        reg.count("detection.cycles", DETECT_POLL_CYCLES * n_cores as u64);
                        if let Some(alarm) = d.poll(reg) {
                            reg.event(
                                EventKind::DetectorAlarm,
                                format!(
                                    "signature={} value={:.4} threshold={:.4}",
                                    alarm.signature.name(),
                                    alarm.value,
                                    alarm.threshold
                                ),
                            );
                            if mitigation.is_none() {
                                if let Some(resp) = det.response {
                                    mitigation = Some(resp);
                                    tracker = Some(LoadTracker::new(self.shard.rss.table_size));
                                    rep.activated_epoch = Some(alarm.epoch);
                                    reg.event(
                                        EventKind::MitigationActivated,
                                        format!("epoch={}", alarm.epoch),
                                    );
                                }
                            }
                        }
                    }
                }
            }

            let pkt = workload.packets[i % workload.packets.len()];
            // One Toeplitz hash per packet: the queue is the entry's table
            // cell (non-flow packets bypass the table onto queue 0, as in
            // `RssDispatcher::queue_of_packet`).
            let entry = self.dispatcher.entry_of_packet(&pkt);
            let queue = match entry {
                Some(e) => self.dispatcher.table()[e] as usize,
                None => 0,
            };
            if let (Some(t), Some(entry)) = (tracker.as_mut(), entry) {
                t.record(entry, pkt.flow().map(|f| f.to_u128()));
            }
            if registry.is_some() {
                dispatched_epoch[queue] += 1;
                if let (Some(instr), Some(entry)) = (entry_instr.as_mut(), entry) {
                    instr.record(entry);
                }
            }
            out[queue].dispatched += 1;
            if let Some(batch) = batcher.push(queue, (i, entry, pkt)) {
                let mut core = queue;
                if mitigation.is_some_and(|m| m.work_stealing) {
                    let idlest = (0..n_cores).min_by_key(|&c| (busy[c], c)).unwrap_or(queue);
                    if idlest != queue && busy[queue] >= busy[idlest] + STEAL_THRESHOLD_CYCLES {
                        core = idlest;
                        out[core].stolen_batches += 1;
                        out[core].steal_cycles += STEAL_BATCH_CYCLES;
                        busy[core] += STEAL_BATCH_CYCLES;
                        if let Some(reg) = registry.as_mut() {
                            reg.count("steal.batches", 1);
                            reg.count("steal.cycles", STEAL_BATCH_CYCLES);
                            reg.event(EventKind::WorkSteal, format!("home={queue} thief={core}"));
                        }
                    }
                }
                busy[core] += exec_batch(
                    &self.chain,
                    &mut self.cpu,
                    &mut self.cores[core],
                    self.limits,
                    core,
                    &batch,
                    cfg,
                    &mut rngs[core],
                    &mut out[core],
                    clock_ghz,
                    tracker.as_mut(),
                    epoch_stats.get_mut(core),
                );
                self.neighbor_replay();
            }
        }
        // End of trace: drain the partial batches in core order.
        for (queue, batch) in batcher.flush() {
            busy[queue] += exec_batch(
                &self.chain,
                &mut self.cpu,
                &mut self.cores[queue],
                self.limits,
                queue,
                &batch,
                cfg,
                &mut rngs[queue],
                &mut out[queue],
                clock_ghz,
                tracker.as_mut(),
                epoch_stats.get_mut(queue),
            );
            self.neighbor_replay();
        }
        // Seal the final (possibly partial) telemetry epoch, with a last
        // detector poll over it — its packet count guard keeps short tails
        // from being judged.
        if let Some(reg) = registry.as_mut() {
            seal_telemetry(
                reg,
                &mut epoch_stats,
                &mut dispatched_epoch,
                entry_instr.as_mut(),
            );
            if let (Some(d), Some(rep)) = (detector.as_mut(), detection_report.as_mut()) {
                for (c, b) in busy.iter_mut().enumerate() {
                    *b += DETECT_POLL_CYCLES;
                    out[c].detection_cycles += DETECT_POLL_CYCLES;
                }
                rep.polls += 1;
                rep.overhead_cycles += DETECT_POLL_CYCLES * n_cores as u64;
                reg.count("detection.cycles", DETECT_POLL_CYCLES * n_cores as u64);
                d.poll(reg);
            }
        }
        if let (Some(d), Some(rep)) = (detector.as_ref(), detection_report.as_mut()) {
            rep.alarms = d.alarms().to_vec();
        }
        self.last_registry = registry;
        self.last_detection = detection_report;

        for (c, core) in out.iter_mut().enumerate() {
            core.mem = self.cpu.hierarchy().core_stats(c);
        }
        ShardedMeasurement {
            per_core: out,
            batch_size: self.shard.batch_size,
            clock_hz: self.cpu.clock_hz(),
            table_history,
        }
    }
}

/// Executes one batch on one core: every stage of the core's chain
/// instance per packet, the per-packet forwarding overhead, and the batch's
/// dispatch overhead distributed exactly over its packets. Returns the
/// batch's total cycles (warm-up packets included) — the core's busy-time
/// contribution the work-stealing trigger compares. When a load tracker is
/// passed, every packet's cycles are charged to its indirection entry (the
/// cycle-metric rebalancing signal).
#[allow(clippy::too_many_arguments)]
fn exec_batch(
    chain: &NfChain,
    cpu: &mut MultiCoreCpu,
    state: &mut CoreState,
    limits: RunLimits,
    core: usize,
    batch: &[(usize, Option<usize>, Packet)],
    cfg: &MeasurementConfig,
    rng: &mut StdRng,
    out: &mut CoreMeasurement,
    clock_ghz: f64,
    mut tracker: Option<&mut LoadTracker>,
    mut epoch_stats: Option<&mut CoreEpochStats>,
) -> u64 {
    let n = batch.len() as u64;
    let dispatch_share = BATCH_DISPATCH_CYCLES / n;
    let dispatch_rem = BATCH_DISPATCH_CYCLES % n;
    let core_base = core_stage_base(core, 0);
    let n_stages = chain.len();
    let mut batch_cycles = 0u64;

    for (k, (i, entry, pkt)) in batch.iter().enumerate() {
        let mut pkt = *pkt;
        let mut total = PacketCounters::default();
        let mut was_dropped = false;

        for s in 0..n_stages {
            let stage = &chain.stages[s];
            let interp = Interpreter::new(&stage.nf.program, &stage.nf.natives).with_limits(limits);
            cpu.begin_packet();
            let verdict = {
                let mut sink = cpu.sink(core, core_base + stage.addr_base);
                interp
                    .run_packet(&mut state.mems[s], &pkt, &mut sink)
                    .expect("stage execution failed on the sharded DUT")
                    .return_value
                    .unwrap_or(castan_nf::layout::VERDICT_DROP)
            };
            let c = cpu.packet_counters();
            total.cycles += c.cycles;
            total.instructions += c.instructions;
            total.loads += c.loads;
            total.stores += c.stores;
            total.l3_misses += c.l3_misses;

            match state.handoffs[s].apply(&pkt, verdict) {
                Some(next) => pkt = next,
                None => {
                    was_dropped = true;
                    break;
                }
            }
        }

        total.cycles +=
            PACKET_FORWARD_CYCLES + dispatch_share + u64::from((k as u64) < dispatch_rem);
        total.instructions += FORWARDING_OVERHEAD_INSTRUCTIONS;
        total.l3_misses += FORWARDING_OVERHEAD_MISSES;
        batch_cycles += total.cycles;
        if let (Some(t), Some(entry)) = (tracker.as_deref_mut(), entry) {
            t.record_cycles(*entry, total.cycles);
        }
        if let Some(s) = epoch_stats.as_deref_mut() {
            s.packets += 1;
            s.cycles += total.cycles;
            s.instructions += total.instructions;
            s.l3_misses += total.l3_misses;
        }

        if *i < cfg.warmup_packets {
            continue;
        }
        if was_dropped {
            out.dropped += 1;
        }
        let service = total.cycles as f64 / clock_ghz; // ns
        let base_jitter: f64 = rng.random_range(0.0..60.0);
        let tail: f64 = if rng.random_bool(0.02) {
            rng.random_range(100.0..400.0)
        } else {
            0.0
        };
        let latency = WIRE_LATENCY_NS + service + base_jitter + tail;
        if let Some(s) = epoch_stats.as_deref_mut() {
            s.measured_packets += 1;
            s.measured_cycles += total.cycles;
            s.measured_instructions += total.instructions;
            s.measured_l3_misses += total.l3_misses;
            s.latency.observe_f64(latency);
        }
        out.latency_ns.push(latency);
        out.service_ns.push(service);
        out.end_to_end.push(total);
    }
    batch_cycles
}

/// Convenience: measure one chain under one workload with a fresh sharded
/// DUT.
pub fn measure_sharded(
    chain: &NfChain,
    shard: ShardConfig,
    workload: &Workload,
    cfg: &MeasurementConfig,
) -> ShardedMeasurement {
    let mut dut = ShardedDut::new(chain.clone(), shard, cfg);
    dut.run(workload, cfg)
}

/// The indirection table of a deployment that keeps `attacker_queue` out of
/// RSS (the operator dedicating that core to another tenant): the remaining
/// queues are filled round-robin, preserving entry order. With 5-tuple
/// traffic no packet ever reaches the attacker core — its work comes only
/// from the tenant's own replay.
pub fn victim_table(rss: &RssConfig, attacker_queue: usize) -> Vec<u32> {
    assert!(attacker_queue < rss.n_queues, "attacker queue out of range");
    let victims: Vec<u32> = (0..rss.n_queues as u32)
        .filter(|&q| q as usize != attacker_queue)
        .collect();
    assert!(!victims.is_empty(), "need at least one victim queue");
    (0..rss.table_size)
        .map(|i| victims[i % victims.len()])
        .collect()
}

/// The result of one noisy-neighbour run: the victims' sharded measurement
/// plus the attacker's replay cost (kept out of victim busy time).
#[derive(Clone, Debug)]
pub struct NoisyNeighborMeasurement {
    /// The victims' measurement. The attacker core serves no packets, so
    /// [`ShardedMeasurement::aggregate_mpps`] *is* the victim throughput,
    /// and `per_core[attacker].mem` is the attacker's hierarchy view
    /// (replay hits/misses included).
    pub sharded: ShardedMeasurement,
    /// The replaying core.
    pub attacker_core: usize,
    /// Lines the replay touched during the run.
    pub attacker_touches: u64,
    /// Cycles the replay cost the attacker core (not charged to victims).
    pub attacker_replay_cycles: u64,
}

impl NoisyNeighborMeasurement {
    /// Total L3 misses of the victims' measured packets (the per-packet
    /// counter view, so attacker replay misses are excluded by
    /// construction).
    pub fn victim_l3_misses(&self) -> u64 {
        self.sharded
            .per_core
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != self.attacker_core)
            .flat_map(|(_, core)| core.end_to_end.iter())
            .map(|c| c.l3_misses)
            .sum()
    }

    /// Victim L3 misses per measured packet.
    pub fn victim_l3_misses_per_packet(&self) -> f64 {
        let packets = self.sharded.measured_packets();
        if packets == 0 {
            return 0.0;
        }
        self.victim_l3_misses() as f64 / packets as f64
    }
}

/// The noisy-neighbour testbed: a [`ShardedDut`] whose victim traffic is
/// dispatched over every queue except the attacker core's
/// ([`victim_table`]), while the attacker core replays a line list between
/// executed batches ([`NeighborReplay`]). See the module docs.
pub struct NoisyNeighborDut {
    dut: ShardedDut,
    attacker_core: usize,
}

impl NoisyNeighborDut {
    /// Boots the noisy-neighbour deployment: `shard.n_cores` cores, victim
    /// traffic on all but `attacker_core`, no replay installed yet.
    pub fn new(
        chain: NfChain,
        shard: ShardConfig,
        attacker_core: usize,
        cfg: &MeasurementConfig,
    ) -> Self {
        assert!(
            shard.n_cores >= 2,
            "a noisy neighbour needs a victim to be noisy at"
        );
        assert!(attacker_core < shard.n_cores, "attacker core out of range");
        let mut dut = ShardedDut::new(chain, shard, cfg);
        dut.set_boot_table(Some(victim_table(&shard.rss, attacker_core)));
        NoisyNeighborDut { dut, attacker_core }
    }

    /// The replaying core.
    pub fn attacker_core(&self) -> usize {
        self.attacker_core
    }

    /// The underlying sharded DUT.
    pub fn dut(&self) -> &ShardedDut {
        &self.dut
    }

    /// Mutable access to the underlying sharded DUT (e.g. to attach
    /// telemetry or detection to a noisy-neighbour deployment).
    pub fn dut_mut(&mut self) -> &mut ShardedDut {
        &mut self.dut
    }

    /// Installs the replay line list (absolute virtual addresses in the
    /// attacker's window — an eviction plan's `replay_lines`, or
    /// `castan_xcore::random_neighbor_lines` as the equal-rate control);
    /// `lines_per_batch` lines are touched between consecutive executed
    /// batches.
    pub fn set_replay(&mut self, lines: Vec<u64>, lines_per_batch: usize) {
        let attacker_core = self.attacker_core;
        self.dut.set_neighbor(Some(NeighborReplay {
            attacker_core,
            lines,
            lines_per_batch,
        }));
    }

    /// Removes the replay (the no-attacker arm).
    pub fn clear_replay(&mut self) {
        self.dut.set_neighbor(None);
    }

    /// Profiles every victim core's per-line heat under this deployment's
    /// dispatch in one run (see [`ShardedDut::profile_heat_all`]; the
    /// attacker core serves no traffic, and an installed replay is
    /// suspended for the profiling run, so the attacker contributes no
    /// heat).
    pub fn profile_victim_heat(
        &mut self,
        workload: &Workload,
        cfg: &MeasurementConfig,
    ) -> Vec<(u64, u64)> {
        self.dut.profile_heat_all(workload, cfg)
    }

    /// Replays a workload through the victim cores while the attacker core
    /// runs its replay between batches.
    pub fn run(
        &mut self,
        workload: &Workload,
        cfg: &MeasurementConfig,
    ) -> NoisyNeighborMeasurement {
        let sharded = self.dut.run(workload, cfg);
        let (attacker_touches, attacker_replay_cycles) = self.dut.neighbor_cost();
        NoisyNeighborMeasurement {
            sharded,
            attacker_core: self.attacker_core,
            attacker_touches,
            attacker_replay_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::measure_chain;
    use castan_chain::{chain_by_id, ChainId};
    use castan_workload::{generic_chain_workload, WorkloadConfig, WorkloadKind};

    fn quick() -> MeasurementConfig {
        MeasurementConfig::quick()
    }

    #[test]
    fn one_core_unbatched_is_bit_identical_to_the_chain_dut() {
        // The sharded runtime over 1 core with batches of 1 must reproduce
        // the unbatched ChainDut byte-for-byte: same counters, same latency
        // samples, same drop count.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.005),
        );
        let cfg = quick();
        let single = measure_chain(&chain, &wl, &cfg);
        let sharded = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        assert_eq!(sharded.n_cores(), 1);
        let core = &sharded.per_core[0];
        assert_eq!(core.end_to_end, single.end_to_end);
        assert_eq!(core.latency_ns, single.latency_ns);
        assert_eq!(core.service_ns, single.service_ns);
        assert_eq!(core.dropped, single.dropped);
    }

    #[test]
    fn batching_amortises_dispatch_cycles() {
        // Same traffic, batch of 32 vs batch of 1: the batched run saves
        // close to BATCH_DISPATCH_CYCLES * (1 - 1/32) cycles per packet.
        let chain = chain_by_id(ChainId::Nop3);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.005),
        );
        let cfg = quick();
        let unbatched = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        let batched = measure_sharded(
            &chain,
            ShardConfig {
                batch_size: 32,
                ..ShardConfig::new(1)
            },
            &wl,
            &cfg,
        );
        let cpp = |m: &ShardedMeasurement| {
            m.aggregate_counters().cycles as f64 / m.measured_packets() as f64
        };
        let saved = cpp(&unbatched) - cpp(&batched);
        let expected = BATCH_DISPATCH_CYCLES as f64 * (1.0 - 1.0 / 32.0);
        assert!(
            (saved - expected).abs() < 20.0,
            "batching should save ≈{expected:.0} cycles/packet, saved {saved:.0}"
        );
    }

    #[test]
    fn per_core_counters_reconcile_with_the_aggregate() {
        // Mirrors PR 1's per-stage reconciliation: per-core packet and
        // cycle counters must sum exactly to the aggregate measurement,
        // and the per-core hierarchy statistics to the hierarchy total.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let m = measure_sharded(&chain, ShardConfig::new(4), &wl, &cfg);

        assert_eq!(
            m.measured_packets(),
            cfg.total_packets - cfg.warmup_packets,
            "every non-warmup packet is measured on exactly one core"
        );
        let agg = m.aggregate_counters();
        let mut cycles = 0u64;
        let mut instructions = 0u64;
        let mut misses = 0u64;
        for core in &m.per_core {
            cycles += core.busy_cycles();
            instructions += core.end_to_end.iter().map(|c| c.instructions).sum::<u64>();
            misses += core.end_to_end.iter().map(|c| c.l3_misses).sum::<u64>();
        }
        assert_eq!(agg.cycles, cycles);
        assert_eq!(agg.instructions, instructions);
        assert_eq!(agg.l3_misses, misses);

        let mem = m.aggregate_mem();
        let mut accesses = 0u64;
        for core in &m.per_core {
            accesses += core.mem.accesses;
        }
        assert_eq!(mem.accesses, accesses);
        assert!(accesses > 0, "the run exercised the shared hierarchy");
    }

    #[test]
    #[should_panic(expected = "too many stages")]
    fn overlong_chains_are_rejected_instead_of_aliasing_cores() {
        use castan_nf::{nf_by_id, NfId};
        let nine =
            castan_chain::NfChain::new("nop9", (0..9).map(|_| nf_by_id(NfId::Nop)).collect());
        let _ = ShardedDut::new(nine, ShardConfig::new(2), &quick());
    }

    #[test]
    fn rebalancing_spreads_a_static_skew_after_one_epoch() {
        use castan_runtime::{skew_packets, RebalancePolicy, RssDispatcher};

        let chain = chain_by_id(ChainId::Nop3);
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            ..quick()
        };
        let shard = ShardConfig::new(4);
        let base = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.0005),
        );
        let skew = skew_packets(&base.packets, &RssDispatcher::new(shard.rss), 0);
        let wl = castan_workload::Workload {
            kind: WorkloadKind::RssSkew,
            packets: skew.packets,
        };

        // No mitigation: everything lands (and stays) on core 0.
        let none = measure_sharded(&chain, shard, &wl, &cfg);
        assert_eq!(none.table_history.len(), 1, "no rebalance, boot table only");
        assert!(none.bottleneck_share() > 0.99);

        // Least-loaded rebalancing every 60 packets: from epoch 1 on, the
        // hot entries are spread over all four cores.
        let mitigated = shard.with_mitigation(MitigationConfig::rebalance(
            60,
            RebalancePolicy::LeastLoaded,
        ));
        let m = measure_sharded(&chain, mitigated, &wl, &cfg);
        assert_eq!(m.table_history.len(), 8, "one table per 60-packet epoch");
        assert_ne!(m.table_history[1], m.table_history[0], "epoch 1 rebalanced");
        assert!(
            m.bottleneck_share() < 0.5,
            "rebalancing must spread the skew: share {}",
            m.bottleneck_share()
        );
        assert!(
            m.aggregate_mpps() > 2.0 * none.aggregate_mpps(),
            "rebalanced skew {:.2} Mpps must beat unmitigated {:.2} Mpps",
            m.aggregate_mpps(),
            none.aggregate_mpps()
        );
        // Same run with the migration cost model: flows moved, the
        // destination cores paid for them, throughput dips but survives.
        let paid = measure_sharded(
            &chain,
            shard.with_mitigation(
                MitigationConfig::rebalance(60, RebalancePolicy::LeastLoaded).with_migration_cost(),
            ),
            &wl,
            &cfg,
        );
        assert!(paid.migrated_flows() > 0, "the rebalance moved flow state");
        assert_eq!(
            paid.table_history, m.table_history,
            "the cost model must not change the rebalance schedule"
        );
        assert!(paid.aggregate_mpps() <= m.aggregate_mpps());
        assert!(paid.aggregate_mpps() > 2.0 * none.aggregate_mpps());
    }

    #[test]
    fn one_core_mitigation_is_a_no_op() {
        use castan_runtime::RebalancePolicy;

        // With a single queue every policy is a no-op (nothing to move to),
        // so a mitigated 1-core run is byte-identical to the plain one.
        // Unbatched: the epoch boundary drains in-flight batches, which
        // with larger bursts re-shapes the dispatch-cost amortisation —
        // that drain is deliberate mitigation behaviour, not a bug.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = MeasurementConfig {
            total_packets: 400,
            warmup_packets: 40,
            ..quick()
        };
        let plain = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        let mitigated = measure_sharded(
            &chain,
            ShardConfig::unbatched(1).with_mitigation(
                MitigationConfig::rebalance(50, RebalancePolicy::LeastLoaded)
                    .with_migration_cost()
                    .with_work_stealing()
                    .with_cycle_metric()
                    .with_key_rotation(),
            ),
            &wl,
            &cfg,
        );
        assert_eq!(
            plain.per_core[0].end_to_end,
            mitigated.per_core[0].end_to_end
        );
        assert_eq!(
            plain.per_core[0].latency_ns,
            mitigated.per_core[0].latency_ns
        );
        assert_eq!(mitigated.migrated_flows(), 0);
        assert_eq!(mitigated.stolen_batches(), 0);
        assert!(mitigated
            .table_history
            .iter()
            .all(|t| t.iter().all(|&q| q == 0)));
    }

    #[test]
    fn work_stealing_moves_batches_off_a_skewed_core() {
        use castan_runtime::{skew_packets, RebalancePolicy, RssDispatcher};

        let chain = chain_by_id(ChainId::Nop3);
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            ..quick()
        };
        let shard = ShardConfig::new(4);
        let base = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.0005),
        );
        let skew = skew_packets(&base.packets, &RssDispatcher::new(shard.rss), 0);
        let wl = castan_workload::Workload {
            kind: WorkloadKind::RssSkew,
            packets: skew.packets,
        };
        // Round-robin "rebalancing" never changes the table, so only the
        // work-stealing sink can spread this skew.
        let m = measure_sharded(
            &chain,
            shard.with_mitigation(
                MitigationConfig::rebalance(1_000_000, RebalancePolicy::RoundRobin)
                    .with_work_stealing(),
            ),
            &wl,
            &cfg,
        );
        assert!(m.stolen_batches() > 0, "idle cores must steal batches");
        assert!(
            m.bottleneck_share() < 0.9,
            "stealing must offload the victim core: share {}",
            m.bottleneck_share()
        );
        // Every dispatched packet still went to queue 0 — stealing happens
        // after dispatch.
        assert_eq!(m.per_core[0].dispatched, cfg.total_packets);
    }

    #[test]
    fn key_rotation_scatters_a_fingerprinted_static_skew() {
        use castan_runtime::{skew_packets, RebalancePolicy, RssDispatcher};

        // The attacker fingerprinted the boot key and steers everything to
        // queue 0. A rotation-enabled defender re-keys at every epoch
        // boundary: epoch 0 (boot key) stays pinned, but from epoch 1 on
        // the steered 5-tuples hash pseudo-uniformly again — the attack
        // needs re-fingerprinting mid-run.
        let chain = chain_by_id(ChainId::Nop3);
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            ..quick()
        };
        let shard = ShardConfig::new(4);
        let base = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.0005),
        );
        let skew = skew_packets(&base.packets, &RssDispatcher::new(shard.rss), 0);
        let wl = castan_workload::Workload {
            kind: WorkloadKind::RssSkew,
            packets: skew.packets,
        };
        // Rotation alone (round-robin policy never rewrites the table):
        // the share drop is attributable to the key schedule only.
        let rotated = measure_sharded(
            &chain,
            shard.with_mitigation(
                MitigationConfig::rebalance(60, RebalancePolicy::RoundRobin).with_key_rotation(),
            ),
            &wl,
            &cfg,
        );
        let plain = measure_sharded(&chain, shard, &wl, &cfg);
        assert!(plain.bottleneck_share() > 0.99, "the fingerprint works");
        assert!(
            rotated.bottleneck_share() < 0.6,
            "rotation must scatter the steered flows: share {}",
            rotated.bottleneck_share()
        );
        assert!(
            rotated.aggregate_mpps() > 2.0 * plain.aggregate_mpps(),
            "scattered flows spread the load again: {:.2} vs {:.2} Mpps",
            rotated.aggregate_mpps(),
            plain.aggregate_mpps()
        );
        // Epoch 0 runs under the boot key: its 60 packets all dispatched
        // to queue 0.
        assert!(rotated.per_core[0].dispatched >= 60);
    }

    #[test]
    fn cycle_metric_rebalances_a_static_skew_end_to_end() {
        use castan_runtime::{skew_packets, RebalancePolicy, RssDispatcher};

        let chain = chain_by_id(ChainId::Nop3);
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            ..quick()
        };
        let shard = ShardConfig::new(4);
        let base = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.0005),
        );
        let skew = skew_packets(&base.packets, &RssDispatcher::new(shard.rss), 0);
        let wl = castan_workload::Workload {
            kind: WorkloadKind::RssSkew,
            packets: skew.packets,
        };
        let m = measure_sharded(
            &chain,
            shard.with_mitigation(
                MitigationConfig::rebalance(60, RebalancePolicy::LeastLoaded).with_cycle_metric(),
            ),
            &wl,
            &cfg,
        );
        assert_ne!(m.table_history[1], m.table_history[0], "epoch 1 rebalanced");
        assert!(
            m.bottleneck_share() < 0.5,
            "cycle-weighted rebalancing must spread the skew: share {}",
            m.bottleneck_share()
        );
    }

    #[test]
    fn noisy_neighbor_without_replay_is_byte_identical_to_the_sharded_dut() {
        // The no-attacker arm of the xcore-contention experiment must be
        // byte-identical to a plain ShardedDut run under the same
        // deployment (victim-only table, premapped pages): the replay
        // machinery adds zero perturbation when no replay is installed.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let shard = ShardConfig::new(2).with_premapped_pages();
        let attacker = 1;

        let mut plain = ShardedDut::new(chain.clone(), shard, &cfg);
        plain.set_boot_table(Some(victim_table(&shard.rss, attacker)));
        let reference = plain.run(&wl, &cfg);

        let mut noisy = NoisyNeighborDut::new(chain, shard, attacker, &cfg);
        let m = noisy.run(&wl, &cfg);
        assert_eq!(m.attacker_touches, 0);
        assert_eq!(m.attacker_replay_cycles, 0);
        for (c, (a, b)) in reference
            .per_core
            .iter()
            .zip(&m.sharded.per_core)
            .enumerate()
        {
            assert_eq!(a.end_to_end, b.end_to_end, "core {c} counters");
            assert_eq!(a.latency_ns, b.latency_ns, "core {c} latencies");
            assert_eq!(a.mem, b.mem, "core {c} hierarchy view");
        }
        // The attacker core never saw a packet.
        assert_eq!(m.sharded.per_core[attacker].dispatched, 0);
        assert_eq!(m.sharded.per_core[attacker].packets(), 0);
    }

    #[test]
    fn neighbor_replay_is_charged_to_the_attacker_only() {
        // Replay accounting: the attacker pays for every touch (visible in
        // its hierarchy view and the replay counters), victim busy time
        // never includes replay cycles, and an *unplanned* same-set-index
        // storm — whose lines spread over all L3 slices, leaving fewer than
        // α per (slice, set) bucket — leaves the victims' measured counters
        // untouched in the steady state. Actually evicting victim lines
        // needs the `castan-xcore` eviction plan's oracle-backed bucket
        // targeting; that end-to-end effect is asserted by the
        // `xcore-contention` experiment tests.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let shard = ShardConfig::new(2).with_premapped_pages();
        let attacker = 1;
        let mut quiet = NoisyNeighborDut::new(chain.clone(), shard, attacker, &cfg);
        let baseline = quiet.run(&wl, &cfg);

        // Lines of the attacker's own NAT stage region sharing one L3 set
        // index (one per slice_span bytes) — a control storm with no slice
        // knowledge.
        let slice_span = castan_mem::HierarchyConfig::xeon_e5_2667v2()
            .l3_slice_geometry()
            .sets()
            * castan_mem::LINE_SIZE;
        let region = &chain.stages[0].nf.data_regions[0];
        let base = castan_chain::core_stage_base(attacker, 0) + region.base;
        let lines: Vec<u64> = (0..64u64).map(|i| base + i * slice_span).collect();
        let mut noisy = NoisyNeighborDut::new(chain.clone(), shard, attacker, &cfg);
        noisy.set_replay(lines, 64);
        let attacked = noisy.run(&wl, &cfg);

        assert!(attacked.attacker_touches > 0);
        assert!(attacked.attacker_replay_cycles > 0);
        // Victim busy time excludes the replay: any throughput change can
        // only come from the victims' own cache behaviour.
        let victim_busy: u64 = attacked.sharded.per_core[0].busy_cycles();
        let victim_cycles: u64 = attacked.sharded.per_core[0]
            .end_to_end
            .iter()
            .map(|c| c.cycles)
            .sum();
        assert_eq!(victim_busy, victim_cycles);
        // The attacker's hierarchy view shows the replay traffic; the
        // quiet run's attacker never accessed memory at all.
        assert!(attacked.sharded.per_core[attacker].mem.accesses >= attacked.attacker_touches);
        assert_eq!(baseline.sharded.per_core[attacker].mem.accesses, 0);
        // The blind storm leaves the victims' measured work unchanged —
        // the bar a *planned* storm has to beat.
        assert_eq!(attacked.victim_l3_misses(), baseline.victim_l3_misses());
        // Replay runs are deterministic.
        let again = NoisyNeighborDut::new(chain, shard, attacker, &cfg);
        let mut again = again;
        again.set_replay((0..64u64).map(|i| base + i * slice_span).collect(), 64);
        let repeat = again.run(&wl, &cfg);
        assert_eq!(repeat.attacker_touches, attacked.attacker_touches);
        assert_eq!(
            repeat.attacker_replay_cycles,
            attacked.attacker_replay_cycles
        );
        assert_eq!(repeat.victim_l3_misses(), attacked.victim_l3_misses());
    }

    #[test]
    fn heat_profiling_suspends_the_neighbor_replay() {
        // A profile is about what the victims touch: an installed replay
        // must neither pollute the heat map with attacker-window lines nor
        // run at all during the profiling pass — and must survive it.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.001),
        );
        let cfg = MeasurementConfig {
            total_packets: 200,
            warmup_packets: 20,
            ..quick()
        };
        let shard = ShardConfig::new(2).with_premapped_pages();
        let attacker = 1;
        let mut noisy = NoisyNeighborDut::new(chain, shard, attacker, &cfg);
        let replay_lines: Vec<u64> = (0..4u64)
            .map(|i| castan_chain::core_stage_base(attacker, 0) + 0x1000 + i * 64)
            .collect();
        noisy.set_replay(replay_lines.clone(), 4);
        let heat = noisy.profile_victim_heat(&wl, &cfg);
        assert!(!heat.is_empty());
        let window = castan_chain::CORE_ADDR_STRIDE;
        assert!(
            heat.iter().all(|&(line, _)| line < window),
            "attacker-window lines leaked into the victim profile"
        );
        assert_eq!(noisy.dut().neighbor_cost(), (0, 0), "no replay ran");
        // The replay is still installed: the next measured run uses it.
        let m = noisy.run(&wl, &cfg);
        assert!(m.attacker_touches > 0);
    }

    #[test]
    fn uniform_traffic_spreads_over_all_cores() {
        let chain = chain_by_id(ChainId::Nop3);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let m = measure_sharded(&chain, ShardConfig::new(4), &wl, &cfg);
        for (c, core) in m.per_core.iter().enumerate() {
            assert!(
                core.packets() > 0,
                "core {c} received no packets under uniform traffic"
            );
        }
        assert!(
            m.bottleneck_share() < 0.45,
            "uniform traffic should spread: bottleneck share {}",
            m.bottleneck_share()
        );
    }

    #[test]
    fn telemetry_recording_is_byte_identical_to_the_plain_run() {
        use castan_runtime::RebalancePolicy;

        // Attaching telemetry must never perturb the measurement: sealing
        // is observational (no drains, no RNG draws, no charged cycles),
        // so the recorded run reproduces the plain run byte for byte —
        // the same pin the no-mitigation path carries.
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let shard = ShardConfig::new(4);
        let plain = measure_sharded(&chain, shard, &wl, &cfg);

        let mut dut = ShardedDut::new(chain.clone(), shard, &cfg);
        dut.attach_telemetry(TelemetryConfig::new(256));
        let recorded = dut.run(&wl, &cfg);
        for (c, (a, b)) in plain.per_core.iter().zip(&recorded.per_core).enumerate() {
            assert_eq!(a.end_to_end, b.end_to_end, "core {c} counters");
            assert_eq!(a.latency_ns, b.latency_ns, "core {c} latencies");
            assert_eq!(a.mem, b.mem, "core {c} hierarchy view");
            assert_eq!(a.dispatched, b.dispatched, "core {c} dispatch");
        }
        let reg = dut.telemetry().expect("registry recorded");
        assert!(reg.epoch() > 0, "epochs were sealed");

        // Same pin with every mitigation feature on: the rebalance, key
        // rotation, migration and stealing events are recorded without
        // changing what those mechanisms do.
        let mitigated = shard.with_mitigation(
            MitigationConfig::rebalance(500, RebalancePolicy::LeastLoaded)
                .with_migration_cost()
                .with_work_stealing()
                .with_key_rotation(),
        );
        let plain_mit = measure_sharded(&chain, mitigated, &wl, &cfg);
        let mut dut = ShardedDut::new(chain, mitigated, &cfg);
        dut.attach_telemetry(TelemetryConfig::new(500));
        let recorded_mit = dut.run(&wl, &cfg);
        assert_eq!(plain_mit.table_history, recorded_mit.table_history);
        for (c, (a, b)) in plain_mit
            .per_core
            .iter()
            .zip(&recorded_mit.per_core)
            .enumerate()
        {
            assert_eq!(a.end_to_end, b.end_to_end, "core {c} counters");
            assert_eq!(a.latency_ns, b.latency_ns, "core {c} latencies");
            assert_eq!(a.migration_cycles, b.migration_cycles, "core {c} migration");
            assert_eq!(a.steal_cycles, b.steal_cycles, "core {c} stealing");
        }
    }

    #[test]
    fn telemetry_totals_reconcile_with_the_measurement_exactly() {
        let chain = chain_by_id(ChainId::NatLpm);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.002),
        );
        let cfg = quick();
        let mut dut = ShardedDut::new(chain, ShardConfig::new(4), &cfg);
        dut.attach_telemetry(TelemetryConfig::new(256));
        let m = dut.run(&wl, &cfg);
        let reg = dut.telemetry().expect("registry recorded");

        // The measured view reconciles with the measurement surface to the
        // cycle: registry totals == aggregate counters.
        let agg = m.aggregate_counters();
        assert_eq!(
            reg.counter_total("exec.measured_packets"),
            m.measured_packets() as u64
        );
        assert_eq!(reg.counter_total("exec.measured_cycles"), agg.cycles);
        assert_eq!(
            reg.counter_total("exec.measured_instructions"),
            agg.instructions
        );
        assert_eq!(reg.counter_total("exec.measured_l3_misses"), agg.l3_misses);
        // The all-packet view covers every input packet exactly once.
        assert_eq!(reg.counter_total("exec.packets"), cfg.total_packets as u64);
        assert_eq!(
            reg.counter_total("dispatch.packets"),
            cfg.total_packets as u64
        );
        // Per-core counters reconcile with the per-core measurements.
        for (c, core) in m.per_core.iter().enumerate() {
            assert_eq!(
                reg.counter_total(&format!("core{c}.measured_packets")),
                core.packets() as u64,
                "core {c} measured packets"
            );
            assert_eq!(
                reg.counter_total(&format!("core{c}.measured_cycles")),
                core.end_to_end.iter().map(|x| x.cycles).sum::<u64>(),
                "core {c} measured cycles"
            );
            assert_eq!(
                reg.counter_total(&format!("core{c}.packets")),
                core.dispatched as u64,
                "core {c} executed == dispatched without stealing"
            );
            // The latency histogram saw exactly the measured samples.
            let h = reg
                .histogram(&format!("core{c}.latency_ns"))
                .expect("latency histogram")
                .cumulative();
            assert_eq!(h.count(), core.latency_ns.len() as u64);
        }
        // Per-epoch deltas sum back to the totals. Dispatch is counted at
        // arrival, so every full epoch carries exactly the configured
        // packet count; execution lags by the in-flight batches (telemetry
        // seals do not drain), so only its sum is pinned.
        let dispatch = reg.counter("dispatch.packets").expect("series");
        let full_epochs = cfg.total_packets / 256;
        for e in 0..full_epochs as u64 {
            assert_eq!(dispatch.delta_at(e), 256, "epoch {e} dispatch delta");
        }
        let exec = reg.counter("exec.packets").expect("series");
        assert_eq!(
            exec.epochs().iter().map(|&(_, d)| d).sum::<u64>(),
            cfg.total_packets as u64
        );
    }

    #[test]
    fn closed_loop_detection_catches_skew_and_recovers() {
        use castan_runtime::{skew_packets, RebalancePolicy, RssDispatcher};
        use castan_telemetry::detector::{AttackSignature, Baseline, DetectorConfig};

        let chain = chain_by_id(ChainId::Nop3);
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            ..quick()
        };
        let shard = ShardConfig::new(4);
        let telemetry = TelemetryConfig::new(60);

        // Learn the benign envelope from a uniform reference run.
        let base = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig::scaled(0.0005),
        );
        let mut benign = ShardedDut::new(chain.clone(), shard, &cfg);
        benign.attach_telemetry(telemetry);
        benign.run(&base, &cfg);
        let benign_reg = benign.take_telemetry().expect("benign registry");
        let detector = DetectorConfig::with_baseline(Baseline::learn(&[&benign_reg], 32));

        // Zero false positives on a *different* benign trace.
        let other = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig {
                seed: 0xBEEF,
                ..WorkloadConfig::scaled(0.0005)
            },
        );
        let mut honest = ShardedDut::new(chain.clone(), shard, &cfg);
        honest.attach_telemetry(telemetry);
        honest.set_detection(Some(DetectionConfig {
            detector,
            response: None,
        }));
        honest.run(&other, &cfg);
        let rep = honest.detection_report().expect("report");
        assert!(
            rep.alarms.is_empty(),
            "benign traffic must not alarm: {:?}",
            rep.alarms
        );
        assert!(rep.polls > 0);
        assert_eq!(
            rep.overhead_cycles,
            rep.polls * 4 * DETECT_POLL_CYCLES,
            "every poll charges every core"
        );

        // The fingerprinted skew: detect-only flags it within 3 epochs.
        let skew = skew_packets(&base.packets, &RssDispatcher::new(shard.rss), 0);
        let wl = castan_workload::Workload {
            kind: WorkloadKind::RssSkew,
            packets: skew.packets,
        };
        let plain = measure_sharded(&chain, shard, &wl, &cfg);
        let mut watched = ShardedDut::new(chain.clone(), shard, &cfg);
        watched.attach_telemetry(telemetry);
        watched.set_detection(Some(DetectionConfig {
            detector,
            response: None,
        }));
        let detect_only = watched.run(&wl, &cfg);
        let rep = watched.detection_report().expect("report");
        let epochs = rep.epochs_to_detect().expect("skew must be flagged");
        assert!(epochs <= 3, "took {epochs} epochs");
        assert!(rep
            .alarms
            .iter()
            .any(|a| a.signature == AttackSignature::QueueSkew));
        assert!(
            rep.activated_epoch.is_none(),
            "no response configured, nothing to activate"
        );
        // Detect-only still pins the whole skew on one core.
        assert!(detect_only.bottleneck_share() > 0.99);

        // Closed loop: the first alarm switches rebalancing on mid-run and
        // recovers real throughput over the unmitigated attacked arm.
        let mut closed = ShardedDut::new(chain, shard, &cfg);
        closed.attach_telemetry(telemetry);
        closed.set_detection(Some(DetectionConfig {
            detector,
            response: Some(MitigationConfig::rebalance(
                60,
                RebalancePolicy::LeastLoaded,
            )),
        }));
        let m = closed.run(&wl, &cfg);
        let rep = closed.detection_report().expect("report");
        assert!(
            rep.activated_epoch.is_some(),
            "the alarm activated the response"
        );
        assert!(
            m.table_history.len() > 1,
            "the activated mitigation rebalanced the table"
        );
        assert!(
            m.bottleneck_share() < 0.7,
            "activated rebalancing spreads the skew: share {}",
            m.bottleneck_share()
        );
        assert!(
            m.aggregate_mpps() > 1.5 * plain.aggregate_mpps(),
            "closed loop {:.2} Mpps must recover over unmitigated {:.2} Mpps",
            m.aggregate_mpps(),
            plain.aggregate_mpps()
        );
        // The detector's work is charged, and visible in busy time.
        assert!(rep.overhead_cycles > 0);
        let detection: u64 = m.per_core.iter().map(|c| c.detection_cycles).sum();
        assert_eq!(detection, rep.overhead_cycles);
        // The registry narrates the episode: alarm, activation, rebalance.
        let reg = closed.telemetry().expect("registry");
        let kinds: Vec<EventKind> = reg.events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&EventKind::DetectorAlarm));
        assert!(kinds.contains(&EventKind::MitigationActivated));
        assert!(kinds.contains(&EventKind::Rebalance));
    }

    #[test]
    fn per_core_latency_cdfs_pin_the_idle_core_contract() {
        // Pinned contract: an idle core (no measured packets, e.g. under
        // full queue skew) yields an *empty* CDF whose quantiles are all
        // NaN, and a one-packet core answers that packet's latency at
        // every quantile — downstream plotting code must not have to
        // special-case either.
        let m = ShardedMeasurement {
            per_core: vec![
                CoreMeasurement {
                    latency_ns: vec![100.0, 300.0, 200.0],
                    ..CoreMeasurement::default()
                },
                CoreMeasurement::default(),
                CoreMeasurement {
                    latency_ns: vec![42.0],
                    ..CoreMeasurement::default()
                },
            ],
            batch_size: 32,
            clock_hz: 3_200_000_000,
            table_history: vec![vec![0, 1, 2]],
        };
        let cdfs = m.per_core_latency_cdfs();
        assert_eq!(cdfs.len(), 3);
        assert_eq!(cdfs[0].median(), 200.0);
        assert!(cdfs[1].is_empty());
        assert!(cdfs[1].quantile(0.5).is_nan() && cdfs[1].max().is_nan());
        for p in [0.0, 0.5, 1.0] {
            assert_eq!(cdfs[2].quantile(p), 42.0, "quantile({p})");
        }
    }
}

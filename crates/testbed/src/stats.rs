//! CDFs and summary statistics for the evaluation plots and tables.

/// An empirical cumulative distribution function over `f64` samples.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn new(mut samples: Vec<f64>) -> Self {
        samples.retain(|v| v.is_finite());
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The p-quantile (p in [0, 1]).
    pub fn quantile(&self, p: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let p = p.clamp(0.0, 1.0);
        let idx = ((self.sorted.len() - 1) as f64 * p).round() as usize;
        self.sorted[idx]
    }

    /// The median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.quantile(0.0)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.quantile(1.0)
    }

    /// Evenly spaced (value, cumulative probability) points, suitable for
    /// printing the figure series: `points(n)` returns `n` samples of the
    /// curve from the minimum to the maximum.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let p = i as f64 / (n - 1).max(1) as f64;
                (self.quantile(p), p)
            })
            .collect()
    }
}

/// Median of integer samples, as `f64`.
pub fn median_u64(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut s: Vec<u64> = samples.to_vec();
    s.sort_unstable();
    s[(s.len() - 1) / 2] as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_a_ramp() {
        let cdf = Cdf::new((0..=100).map(f64::from).collect());
        assert_eq!(cdf.len(), 101);
        assert_eq!(cdf.median(), 50.0);
        assert_eq!(cdf.min(), 0.0);
        assert_eq!(cdf.max(), 100.0);
        assert_eq!(cdf.quantile(0.9), 90.0);
        let pts = cdf.points(11);
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0], (0.0, 0.0));
        assert_eq!(pts[10], (100.0, 1.0));
    }

    #[test]
    fn empty_and_nan_handling() {
        let cdf = Cdf::new(vec![f64::NAN, 3.0, 1.0]);
        assert_eq!(cdf.len(), 2);
        assert!(Cdf::new(vec![]).is_empty());
        assert!(Cdf::new(vec![]).median().is_nan());
        assert!(median_u64(&[]).is_nan());
    }

    #[test]
    fn empty_cdf_answers_nan_at_every_quantile() {
        // Pinned contract: an empty CDF (e.g. an idle core under full
        // queue skew) answers NaN at *every* quantile — min/max included —
        // and renders no curve points. Callers must not have to
        // special-case it.
        let cdf = Cdf::new(vec![]);
        assert_eq!(cdf.len(), 0);
        for p in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert!(cdf.quantile(p).is_nan(), "quantile({p}) must be NaN");
        }
        assert!(cdf.min().is_nan() && cdf.max().is_nan());
        assert!(cdf.points(8).is_empty());
    }

    #[test]
    fn single_sample_cdf_answers_it_at_every_quantile() {
        // Pinned contract: with one sample every quantile returns that
        // sample (out-of-range p clamps rather than panicking or
        // extrapolating), and points(n) repeats it across the whole
        // probability axis.
        let cdf = Cdf::new(vec![42.5]);
        assert_eq!(cdf.len(), 1);
        for p in [-3.0, 0.0, 0.25, 0.5, 0.99, 1.0, 7.0] {
            assert_eq!(cdf.quantile(p), 42.5, "quantile({p})");
        }
        assert_eq!(cdf.points(3), vec![(42.5, 0.0), (42.5, 0.5), (42.5, 1.0)]);
    }

    #[test]
    fn median_u64_works() {
        assert_eq!(median_u64(&[5, 1, 9]), 5.0);
        assert_eq!(median_u64(&[4, 1, 9, 5]), 4.0);
    }
}

//! Maximum-throughput search (§5.1: "we vary the rate at which the TG sends
//! packets to the DUT and identify the highest rate at which the DUT drops
//! less than 1% of the packets it receives").
//!
//! The DUT is modelled as a single server with the measured per-packet
//! service times and a finite NIC/driver queue; the TG offers evenly paced
//! traffic at a candidate rate; a binary search finds the highest rate whose
//! simulated drop ratio stays below 1 %.

use crate::dut::Measurement;

/// Throughput-search parameters.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputConfig {
    /// RX-queue capacity in packets (DPDK default-ish ring size).
    pub queue_capacity: usize,
    /// Packets offered per trial rate.
    pub packets_per_trial: usize,
    /// Acceptable drop ratio (the paper uses 1 %).
    pub max_drop_ratio: f64,
    /// Binary-search iterations.
    pub iterations: u32,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            queue_capacity: 512,
            packets_per_trial: 40_000,
            max_drop_ratio: 0.01,
            iterations: 18,
        }
    }
}

/// Simulates offering `rate_mpps` to a server with the measurement's service
/// times; returns the drop ratio.
fn drop_ratio(measurement: &Measurement, rate_mpps: f64, cfg: &ThroughputConfig) -> f64 {
    let service = &measurement.service_ns;
    if service.is_empty() || rate_mpps <= 0.0 {
        return 0.0;
    }
    let inter_arrival_ns = 1e3 / rate_mpps; // 1/(Mpps) in ns
    let n = cfg.packets_per_trial;
    let mut server_free_at: f64 = 0.0;
    let mut dropped: usize = 0;
    let mut in_queue: usize = 0;
    let mut arrivals_done = 0usize;
    // Event loop: arrivals are evenly paced; the server drains the queue
    // one packet at a time with the measured (cyclic) service times.
    let mut next_service_idx = 0usize;
    while arrivals_done < n {
        let now = arrivals_done as f64 * inter_arrival_ns;
        // Drain departures that happened before this arrival.
        while in_queue > 0 && server_free_at <= now {
            in_queue -= 1;
            let s = measurement.service_ns[next_service_idx % service.len()];
            next_service_idx += 1;
            server_free_at += s;
        }
        if in_queue >= cfg.queue_capacity {
            dropped += 1;
        } else {
            if in_queue == 0 && server_free_at < now {
                server_free_at = now;
            }
            in_queue += 1;
        }
        arrivals_done += 1;
    }
    dropped as f64 / n as f64
}

/// Finds the maximum throughput (Mpps) sustaining less than the configured
/// drop ratio.
pub fn max_throughput_mpps(measurement: &Measurement, cfg: &ThroughputConfig) -> f64 {
    // Upper bound: the service-rate implied by the mean service time, plus
    // headroom; lower bound 0.
    let mean_service_ns: f64 =
        measurement.service_ns.iter().sum::<f64>() / measurement.service_ns.len().max(1) as f64;
    if mean_service_ns <= 0.0 {
        return 0.0;
    }
    let mut lo = 0.0f64;
    let mut hi = 1.2e3 / mean_service_ns; // Mpps, 20 % above the fluid limit
    for _ in 0..cfg.iterations {
        let mid = (lo + hi) / 2.0;
        if drop_ratio(measurement, mid, cfg) <= cfg.max_drop_ratio {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dut::{measure, MeasurementConfig};
    use castan_nf::{nf_by_id, NfId};
    use castan_workload::{generic_workload, WorkloadConfig, WorkloadKind};

    fn quick_tp() -> ThroughputConfig {
        ThroughputConfig {
            packets_per_trial: 8_000,
            iterations: 14,
            ..Default::default()
        }
    }

    #[test]
    fn nop_throughput_matches_the_calibration_target() {
        let nf = nf_by_id(NfId::Nop);
        let w = generic_workload(&nf, WorkloadKind::OnePacket, &WorkloadConfig::scaled(0.01));
        let m = measure(&nf, &w, &MeasurementConfig::quick());
        let mpps = max_throughput_mpps(&m, &quick_tp());
        assert!(
            (3.0..3.9).contains(&mpps),
            "NOP should forward at ≈3.45 Mpps, got {mpps:.2}"
        );
    }

    #[test]
    fn slower_nfs_have_lower_throughput() {
        let cfg = MeasurementConfig::quick();
        let wl = WorkloadConfig::scaled(0.01);
        let nop = nf_by_id(NfId::Nop);
        let nat = nf_by_id(NfId::NatUnbalancedTree);
        let m_nop = measure(
            &nop,
            &generic_workload(&nop, WorkloadKind::Zipfian, &wl),
            &cfg,
        );
        let m_nat = measure(
            &nat,
            &generic_workload(&nat, WorkloadKind::Zipfian, &wl),
            &cfg,
        );
        let t_nop = max_throughput_mpps(&m_nop, &quick_tp());
        let t_nat = max_throughput_mpps(&m_nat, &quick_tp());
        assert!(
            t_nat < t_nop,
            "NAT {t_nat:.2} must be slower than NOP {t_nop:.2}"
        );
        assert!(t_nat > 0.5);
    }
}

//! # castan-workload
//!
//! Workload generators for the evaluation (§5.1 "Workloads"):
//!
//! * **1 Packet** — the same packet replayed in a loop (best case).
//! * **Zipfian** — 100 005 packets over 6 674 flows, flow popularity drawn
//!   from a Zipf distribution with s = 1.26 (typical real-world traffic).
//! * **UniRand** — 1 000 472 packets over 1 000 001 flows, uniform
//!   popularity (DoS-style stress traffic).
//! * **UniRand CASTAN** — UniRand restricted to as many flows as the CASTAN
//!   workload uses (fair comparison when sheer flow count is what matters).
//! * **Manual** — hand-crafted adversarial workloads, where human intuition
//!   suffices (trie deepest routes; tree-skew packet sequences).
//! * **CASTAN** — the workload synthesized by `castan-core`.
//! * **RSS-Skew** — any of the above, steered so every 5-tuple hashes to
//!   one RSS queue of the multi-core runtime (all flows on one victim
//!   core; see `castan-runtime::skew`).
//!
//! All generators are deterministic given their seed and can be scaled down
//! (`scale`) so that full experiment sweeps stay tractable on the simulated
//! testbed; the defaults reproduce the paper's packet and flow counts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use castan_chain::NfChain;
use castan_nf::{layout, routes, NfId, NfKind, NfSpec};
use castan_packet::dist::{FlowPool, UniformSampler, ZipfSampler, PAPER_ZIPF_EXPONENT};
use castan_packet::{FlowKey, Ipv4Addr, Packet, PacketBuilder};
use castan_runtime::{skew_packets, skew_packets_per_epoch, RssConfig, RssDispatcher};

/// The workload kinds of §5.1.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum WorkloadKind {
    /// A single packet replayed in a loop.
    OnePacket,
    /// Zipf-distributed flows (s = 1.26).
    Zipfian,
    /// Uniformly distributed flows.
    UniRand,
    /// Uniform flows, but only as many as the CASTAN workload contains.
    UniRandCastan,
    /// Hand-crafted adversarial workload.
    Manual,
    /// CASTAN-synthesized adversarial workload.
    Castan,
    /// A workload steered onto a single RSS queue (queue-skew attack on
    /// the multi-core runtime).
    RssSkew,
    /// A queue-skew workload whose steering *chases a rebalancing
    /// defender*: each rebalance epoch of the trace is re-steered against
    /// the indirection table the defender had active in that epoch (as
    /// learned from a previous attack–defense round).
    AdaptiveSkew,
    /// The *online resynthesis* queue-skew attacker: the full CASTAN chain
    /// synthesis is re-run inside every rebalance epoch and the fresh
    /// result steered against the Toeplitz key the key-rotating defender
    /// uses in that epoch. A precomputed skew loses its steering at the
    /// first rotation; this attacker never does — affordable only because
    /// the parallel search engine made synthesis cheap enough to fit
    /// inside an epoch.
    ResynthSkew,
    /// The packet-only cross-core eviction attack: victim traffic steered
    /// *off* one attacker queue, interleaved with eviction traffic (the
    /// `castan-core` cross-core synthesis) steered *onto* it, so the
    /// attacker core's own chain instance evicts the victims' hot
    /// shared-L3 lines.
    NeighborEvict,
    /// A workload steered onto a single *node* of an ECMP front tier
    /// (fleet-level skew; the victim node's own RSS still spreads the
    /// flows over its cores). Synthesised by `castan-cluster`.
    EcmpSkew,
    /// The composed fleet attack: every flow steered onto one node *and*
    /// one RSS queue of that node, serialising the whole cluster behind a
    /// single core. Synthesised by `castan-cluster`.
    ClusterSkew,
}

impl WorkloadKind {
    /// Display name as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::OnePacket => "1 Packet",
            WorkloadKind::Zipfian => "Zipfian",
            WorkloadKind::UniRand => "UniRand",
            WorkloadKind::UniRandCastan => "UniRand CASTAN",
            WorkloadKind::Manual => "Manual",
            WorkloadKind::Castan => "CASTAN",
            WorkloadKind::RssSkew => "RSS-Skew",
            WorkloadKind::AdaptiveSkew => "Adaptive-Skew",
            WorkloadKind::ResynthSkew => "Resynth-Skew",
            WorkloadKind::NeighborEvict => "Neighbor-Evict",
            WorkloadKind::EcmpSkew => "ECMP-Skew",
            WorkloadKind::ClusterSkew => "ECMP×RSS-Skew",
        }
    }

    /// The workloads every NF is evaluated under (Manual and CASTAN are NF
    /// specific and added separately).
    pub const GENERIC: [WorkloadKind; 4] = [
        WorkloadKind::OnePacket,
        WorkloadKind::Zipfian,
        WorkloadKind::UniRand,
        WorkloadKind::UniRandCastan,
    ];
}

impl std::fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete workload: an ordered packet sequence (replayed in a loop by
/// the traffic generator until the experiment duration is reached).
#[derive(Clone, Debug)]
pub struct Workload {
    /// Which kind of workload this is.
    pub kind: WorkloadKind,
    /// The packets.
    pub packets: Vec<Packet>,
}

impl Workload {
    /// Number of packets.
    pub fn len(&self) -> usize {
        self.packets.len()
    }

    /// True if there are no packets.
    pub fn is_empty(&self) -> bool {
        self.packets.is_empty()
    }

    /// Number of distinct flows.
    pub fn distinct_flows(&self) -> usize {
        let mut flows: Vec<FlowKey> = self.packets.iter().filter_map(Packet::flow).collect();
        flows.sort_unstable();
        flows.dedup();
        flows.len()
    }
}

/// Paper-default packet counts.
pub mod defaults {
    /// Packets in the Zipfian trace.
    pub const ZIPF_PACKETS: u64 = 100_005;
    /// Flows in the Zipfian trace.
    pub const ZIPF_FLOWS: u64 = 6_674;
    /// Packets in the UniRand trace.
    pub const UNIRAND_PACKETS: u64 = 1_000_472;
    /// Flows in the UniRand trace.
    pub const UNIRAND_FLOWS: u64 = 1_000_001;
}

/// Generator configuration.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadConfig {
    /// Scale factor in (0, 1]: packet and flow counts of the generic
    /// workloads are multiplied by this (the paper's counts at 1.0).
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            scale: 1.0,
            seed: 0xF10D,
        }
    }
}

impl WorkloadConfig {
    /// A scaled-down configuration for quick runs and tests.
    pub fn scaled(scale: f64) -> Self {
        WorkloadConfig {
            scale,
            ..Default::default()
        }
    }

    fn count(&self, base: u64) -> u64 {
        ((base as f64 * self.scale).round() as u64).max(1)
    }
}

/// The destination every generic workload sends to: the LB's VIP, so that
/// the same traces exercise all NF classes (the paper tailors the LB
/// workloads this way; LPM and NAT do not care about the destination
/// distribution of the generic traces).
///
/// Chains derive the same profile from their stage composition
/// ([`NfChain::target_dst`] / [`NfChain::wants_dst_diversity`]): the VIP
/// when an LB stage is present, destination-diverse when an LPM stage sees
/// the original destinations.
struct TrafficProfile {
    dst: Ipv4Addr,
    dport: u16,
    /// Spread a per-flow destination over the IPv4 space (what exercises a
    /// forwarding table), instead of the fixed `dst`.
    spread_dst: bool,
}

impl TrafficProfile {
    fn for_nf(nf: &NfSpec) -> TrafficProfile {
        let (dst, dport) = match nf.kind {
            NfKind::Lb => (Ipv4Addr(layout::LB_VIP), 80),
            _ => (Ipv4Addr::new(93, 184, 216, 34), 80),
        };
        TrafficProfile {
            dst,
            dport,
            spread_dst: nf.kind == NfKind::Lpm,
        }
    }

    fn for_chain(chain: &NfChain) -> TrafficProfile {
        let (dst, dport) = chain.target_dst();
        TrafficProfile {
            dst,
            dport,
            spread_dst: chain.wants_dst_diversity(),
        }
    }

    /// Builds the packet of flow number `i`: a distinct (source IP, source
    /// port) pair — what the stateful NFs key on — plus, when
    /// `spread_dst` is set, a per-flow destination spread over the IPv4
    /// space.
    fn packet(&self, pool: &FlowPool, i: u64) -> Packet {
        let flow: FlowKey = pool.flow(i);
        let mut builder = PacketBuilder::udp_flow(flow);
        if self.spread_dst {
            let spread = (i.wrapping_mul(2654435761) as u32) ^ (i as u32).rotate_left(16);
            builder = builder.dst_ip(Ipv4Addr(spread));
        }
        builder.build()
    }

    /// One of the generic workload kinds, deterministic given `cfg.seed`.
    fn generic(&self, kind: WorkloadKind, cfg: &WorkloadConfig) -> Workload {
        let packets = match kind {
            WorkloadKind::OnePacket => {
                let pool = FlowPool::new(1, self.dst, self.dport);
                vec![self.packet(&pool, 0)]
            }
            WorkloadKind::Zipfian => {
                let flows = cfg.count(defaults::ZIPF_FLOWS);
                let n = cfg.count(defaults::ZIPF_PACKETS);
                let pool = FlowPool::new(flows, self.dst, self.dport);
                let mut sampler = ZipfSampler::new(flows as usize, PAPER_ZIPF_EXPONENT, cfg.seed);
                (0..n)
                    .map(|_| self.packet(&pool, sampler.sample() as u64))
                    .collect()
            }
            WorkloadKind::UniRand => {
                let flows = cfg.count(defaults::UNIRAND_FLOWS);
                let n = cfg.count(defaults::UNIRAND_PACKETS);
                let pool = FlowPool::new(flows, self.dst, self.dport);
                let mut sampler = UniformSampler::new(flows, cfg.seed ^ 0x5a5a);
                (0..n)
                    .map(|_| self.packet(&pool, sampler.sample()))
                    .collect()
            }
            WorkloadKind::UniRandCastan
            | WorkloadKind::Manual
            | WorkloadKind::Castan
            | WorkloadKind::RssSkew
            | WorkloadKind::AdaptiveSkew
            | WorkloadKind::ResynthSkew
            | WorkloadKind::NeighborEvict
            | WorkloadKind::EcmpSkew
            | WorkloadKind::ClusterSkew => {
                panic!("{kind} is not a generic workload; use the dedicated constructor")
            }
        };
        Workload { kind, packets }
    }

    /// UniRand restricted to `flows` distinct flows (as many as the CASTAN
    /// workload), one packet per draw.
    fn unirand_castan(&self, flows: u64, cfg: &WorkloadConfig) -> Workload {
        let flows = flows.max(1);
        let pool = FlowPool::new(flows, self.dst, self.dport);
        let mut sampler = UniformSampler::new(flows, cfg.seed ^ uc_seed());
        let packets = (0..flows)
            .map(|_| self.packet(&pool, sampler.sample()))
            .collect();
        Workload {
            kind: WorkloadKind::UniRandCastan,
            packets,
        }
    }
}

/// Builds one of the generic workloads for an NF.
pub fn generic_workload(nf: &NfSpec, kind: WorkloadKind, cfg: &WorkloadConfig) -> Workload {
    TrafficProfile::for_nf(nf).generic(kind, cfg)
}

/// UniRand restricted to `flows` distinct flows (as many as the CASTAN
/// workload for the same NF), replayed to the same total packet count as
/// the CASTAN workload would be.
pub fn unirand_castan(nf: &NfSpec, flows: u64, cfg: &WorkloadConfig) -> Workload {
    TrafficProfile::for_nf(nf).unirand_castan(flows, cfg)
}

/// Builds one of the generic workloads for a chain. The destination policy
/// comes from the chain itself ([`NfChain::target_dst`]): VIP-addressed when
/// an LB stage is present, destination-diverse when an LPM stage sees the
/// original destinations. Deterministic given `cfg.seed`.
pub fn generic_chain_workload(
    chain: &NfChain,
    kind: WorkloadKind,
    cfg: &WorkloadConfig,
) -> Workload {
    TrafficProfile::for_chain(chain).generic(kind, cfg)
}

/// UniRand for a chain, restricted to `flows` distinct flows (as many as the
/// chain's CASTAN workload) — the chain counterpart of [`unirand_castan`].
pub fn chain_unirand_castan(chain: &NfChain, flows: u64, cfg: &WorkloadConfig) -> Workload {
    TrafficProfile::for_chain(chain).unirand_castan(flows, cfg)
}

const fn uc_seed() -> u64 {
    0xC0FFEE
}

/// A sharded ("skewed") variant of a generic chain workload: the base
/// workload's packets, steered so that every flow Toeplitz-hashes to
/// `target_queue` of `dispatcher`. Flow popularity and destinations are
/// preserved ([`castan_runtime::skew_packets`]); only source endpoints are
/// rewritten. Deterministic given `cfg.seed`.
pub fn skewed_chain_workload(
    chain: &NfChain,
    base: WorkloadKind,
    cfg: &WorkloadConfig,
    dispatcher: &RssDispatcher,
    target_queue: usize,
) -> Workload {
    let base_wl = generic_chain_workload(chain, base, cfg);
    let skew = skew_packets(&base_wl.packets, dispatcher, target_queue);
    Workload {
        kind: WorkloadKind::RssSkew,
        packets: skew.packets,
    }
}

/// The queue-skew counterpart of [`chain_unirand_castan`]: uniform traffic
/// restricted to `flows` distinct flows (as many as the chain's CASTAN
/// workload), every one of them steered onto `target_queue`. This is the
/// control that separates the *dispatch* collapse from the cache attack —
/// same flow budget as CASTAN, no cache adversariality, full queue skew.
pub fn rss_skew_castan(
    chain: &NfChain,
    flows: u64,
    cfg: &WorkloadConfig,
    dispatcher: &RssDispatcher,
    target_queue: usize,
) -> Workload {
    let base = chain_unirand_castan(chain, flows, cfg);
    let skew = skew_packets(&base.packets, dispatcher, target_queue);
    Workload {
        kind: WorkloadKind::RssSkew,
        packets: skew.packets,
    }
}

/// The *adaptive* queue-skew attacker: expands a base workload to the full
/// replay length and re-steers each rebalance epoch against the
/// indirection table the defender had active in that epoch.
///
/// `tables` is the defender's table schedule as observed in a previous
/// attack–defense round (`castan_testbed`'s `ShardedMeasurement::
/// table_history`); epochs beyond the last known table are steered against
/// it. With `tables` holding only the boot-time table this degenerates to
/// the static [`skewed_chain_workload`] attack; fed a fresh schedule each
/// round, the skew chases the rebalancer — and because epoch `e`'s table
/// is fully determined by the (deterministic) defender's view of epochs
/// `< e`, the chase converges after as many rounds as there are epochs.
///
/// The trace is expanded to `total_packets` *before* steering because the
/// epoch grid is defined over replay positions, not workload positions:
/// the same base packet replayed in two epochs may need two different
/// source endpoints.
pub fn adaptive_skew_trace(
    base: &Workload,
    tables: &[Vec<u32>],
    epoch_packets: usize,
    rss: RssConfig,
    target_queue: usize,
    total_packets: usize,
) -> Workload {
    assert!(!base.is_empty(), "cannot steer an empty workload");
    let full: Vec<Packet> = (0..total_packets)
        .map(|i| base.packets[i % base.packets.len()])
        .collect();
    let synthesis = skew_packets_per_epoch(&full, rss, tables, epoch_packets, target_queue);
    Workload {
        kind: WorkloadKind::AdaptiveSkew,
        packets: synthesis.packets,
    }
}

/// The packet-only cross-core attack trace: `victim`'s packets with every
/// flow that would land on `attacker_queue` re-steered onto another queue
/// (the deployment the eviction attack assumes — victims on the rest of
/// the cores), interleaved with `attack_packets` (a
/// `castan-core::rss::analyze_chain_cross_core` synthesis) steered *onto*
/// `attacker_queue`: one attack packet after every `attack_every - 1`
/// victim packets, cycling through the attack sequence.
///
/// Victim re-steering preserves the [`castan_runtime::skew_packets`]
/// invariants (flow distinctness and consistency); off-queue victim flows
/// are left untouched. Deterministic given its inputs.
pub fn neighbor_evict_workload(
    victim: &Workload,
    attack_packets: &[Packet],
    dispatcher: &RssDispatcher,
    attacker_queue: usize,
    attack_every: usize,
) -> Workload {
    assert!(attack_every >= 2, "need room for victim packets");
    assert!(!victim.is_empty(), "need victim traffic");
    assert!(!attack_packets.is_empty(), "need attack traffic");
    let n_queues = dispatcher.n_queues();
    assert!(n_queues >= 2, "a neighbour attack needs a victim queue");
    assert!(attacker_queue < n_queues, "attacker queue out of range");

    // Pass 1: claim the identity of every victim flow that already avoids
    // the attacker queue, so re-steered flows can never merge into one of
    // them.
    use std::collections::{BTreeMap, BTreeSet};
    let mut used: BTreeSet<u128> = BTreeSet::new();
    for pkt in &victim.packets {
        if let Some(flow) = pkt.flow() {
            if dispatcher.queue_of_flow(&flow) != attacker_queue {
                used.insert(flow.to_u128());
            }
        }
    }
    // Pass 2: move the offending flows to the victim queues, round-robin
    // over the targets for balance.
    let mut mapping: BTreeMap<u128, FlowKey> = BTreeMap::new();
    let mut rotate = 0usize;
    let mut victims = Vec::with_capacity(victim.len());
    for pkt in &victim.packets {
        let Some(flow) = pkt.flow() else {
            victims.push(*pkt);
            continue;
        };
        if dispatcher.queue_of_flow(&flow) != attacker_queue {
            victims.push(*pkt);
            continue;
        }
        let key = flow.to_u128();
        let steered = match mapping.get(&key) {
            Some(f) => Some(*f),
            None => {
                let target = (attacker_queue + 1 + rotate % (n_queues - 1)) % n_queues;
                rotate += 1;
                let found = dispatcher.steer_flow(&flow, target, |c| !used.contains(&c.to_u128()));
                if let Some(f) = found {
                    mapping.insert(key, f);
                    used.insert(f.to_u128());
                }
                found
            }
        };
        match steered {
            Some(f) => victims.push(castan_runtime::steer_packet(pkt, &f)),
            None => victims.push(*pkt),
        }
    }

    // The eviction traffic, all of it on the attacker queue.
    let attack = skew_packets(attack_packets, dispatcher, attacker_queue);

    let mut packets = Vec::with_capacity(victims.len() + victims.len() / (attack_every - 1) + 1);
    let mut a = 0usize;
    for (i, pkt) in victims.iter().enumerate() {
        packets.push(*pkt);
        if (i + 1) % (attack_every - 1) == 0 {
            packets.push(attack.packets[a % attack.packets.len()]);
            a += 1;
        }
    }
    Workload {
        kind: WorkloadKind::NeighborEvict,
        packets,
    }
}

/// Wraps a CASTAN-synthesized packet sequence as a workload.
pub fn castan_workload(packets: Vec<Packet>) -> Workload {
    Workload {
        kind: WorkloadKind::Castan,
        packets,
    }
}

/// Builds the hand-crafted *Manual* adversarial workload for NFs where human
/// intuition suffices (§5: trie LPM, and NAT/LB over the unbalanced tree).
/// Returns `None` for the NFs the paper lists with "-" in the Manual column.
pub fn manual_workload(nf: &NfSpec) -> Option<Workload> {
    let packets = match nf.id {
        // 8 packets matching the most specific (/32) routes.
        NfId::LpmTrie => routes::most_specific_destinations()
            .into_iter()
            .map(|dst| PacketBuilder::new().dst_ip(dst).build())
            .collect::<Vec<_>>(),
        // Same endpoints, increasing destination port: every insert lands on
        // the right spine of the unbalanced tree, degenerating it into a
        // linked list.
        NfId::NatUnbalancedTree | NfId::LbUnbalancedTree => {
            let dst = if nf.id == NfId::LbUnbalancedTree {
                Ipv4Addr(layout::LB_VIP)
            } else {
                Ipv4Addr::new(8, 8, 8, 8)
            };
            (0..50u16)
                .map(|i| {
                    PacketBuilder::new()
                        .src_ip(Ipv4Addr::new(192, 168, 1, 7))
                        .src_port(4242)
                        .dst_ip(dst)
                        .dst_port(2000 + i)
                        .build()
                })
                .collect()
        }
        _ => return None,
    };
    Some(Workload {
        kind: WorkloadKind::Manual,
        packets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_chain::{chain_by_id, ChainId};
    use castan_nf::nf_by_id;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig::scaled(0.01)
    }

    #[test]
    fn chain_workloads_follow_the_destination_policy() {
        let lb_chain = chain_by_id(ChainId::LbLpm);
        let w = generic_chain_workload(&lb_chain, WorkloadKind::Zipfian, &small_cfg());
        assert!(w
            .packets
            .iter()
            .all(|p| p.field(castan_packet::PacketField::DstIp) == u64::from(layout::LB_VIP)));

        let nat_chain = chain_by_id(ChainId::NatLpm);
        let w = generic_chain_workload(&nat_chain, WorkloadKind::UniRand, &small_cfg());
        let dsts: std::collections::BTreeSet<u64> = w
            .packets
            .iter()
            .map(|p| p.field(castan_packet::PacketField::DstIp))
            .collect();
        assert!(dsts.len() > 100, "nat-lpm traffic must spread destinations");
    }

    #[test]
    fn chain_workloads_are_deterministic_given_a_seed() {
        let chain = chain_by_id(ChainId::NatLbLpm);
        for kind in [
            WorkloadKind::OnePacket,
            WorkloadKind::Zipfian,
            WorkloadKind::UniRand,
        ] {
            let a = generic_chain_workload(&chain, kind, &small_cfg());
            let b = generic_chain_workload(&chain, kind, &small_cfg());
            assert_eq!(a.packets, b.packets, "{kind}");
        }
        let mut other = small_cfg();
        other.seed ^= 1;
        let a = generic_chain_workload(&chain, WorkloadKind::Zipfian, &small_cfg());
        let b = generic_chain_workload(&chain, WorkloadKind::Zipfian, &other);
        assert_ne!(
            a.packets, b.packets,
            "different seeds give different traces"
        );
    }

    #[test]
    fn chain_unirand_castan_matches_flow_budget() {
        let chain = chain_by_id(ChainId::NatLpm);
        let w = chain_unirand_castan(&chain, 25, &WorkloadConfig::default());
        assert_eq!(w.len(), 25);
        assert!(w.distinct_flows() <= 25);
        assert_eq!(w.kind, WorkloadKind::UniRandCastan);
    }

    #[test]
    fn skewed_chain_workload_lands_on_one_queue() {
        let chain = chain_by_id(ChainId::NatLpm);
        let d = RssDispatcher::for_queues(4);
        for queue in 0..4 {
            let w = skewed_chain_workload(&chain, WorkloadKind::UniRand, &small_cfg(), &d, queue);
            assert_eq!(w.kind, WorkloadKind::RssSkew);
            assert!(!w.is_empty());
            assert!(w.packets.iter().all(|p| d.queue_of_packet(p) == queue));
        }
        // The skewed variant preserves the base workload's flow diversity.
        let base = generic_chain_workload(&chain, WorkloadKind::UniRand, &small_cfg());
        let skewed = skewed_chain_workload(&chain, WorkloadKind::UniRand, &small_cfg(), &d, 0);
        assert_eq!(base.len(), skewed.len());
        assert_eq!(base.distinct_flows(), skewed.distinct_flows());
    }

    #[test]
    fn skewed_chain_workload_is_deterministic() {
        let chain = chain_by_id(ChainId::LbLpm);
        let d = RssDispatcher::for_queues(8);
        let a = skewed_chain_workload(&chain, WorkloadKind::Zipfian, &small_cfg(), &d, 5);
        let b = skewed_chain_workload(&chain, WorkloadKind::Zipfian, &small_cfg(), &d, 5);
        assert_eq!(a.packets, b.packets);
    }

    #[test]
    fn rss_skew_castan_matches_flow_budget_on_one_queue() {
        let chain = chain_by_id(ChainId::NatLpm);
        let d = RssDispatcher::for_queues(4);
        let w = rss_skew_castan(&chain, 25, &WorkloadConfig::default(), &d, 2);
        assert_eq!(w.len(), 25);
        assert!(w.distinct_flows() <= 25);
        assert_eq!(w.kind, WorkloadKind::RssSkew);
        assert!(w.packets.iter().all(|p| d.queue_of_packet(p) == 2));
    }

    #[test]
    fn adaptive_skew_trace_chases_the_table_schedule() {
        let chain = chain_by_id(ChainId::NatLpm);
        let rss = castan_runtime::RssConfig::for_queues(4);
        let boot = RssDispatcher::new(rss).table().to_vec();
        let rotated: Vec<u32> = boot.iter().map(|&q| (q + 2) % 4).collect();
        let base = generic_chain_workload(&chain, WorkloadKind::UniRand, &small_cfg());
        let wl = adaptive_skew_trace(&base, &[boot.clone(), rotated.clone()], 100, rss, 1, 250);
        assert_eq!(wl.kind, WorkloadKind::AdaptiveSkew);
        assert_eq!(wl.len(), 250, "expanded to the replay length");
        let d0 = RssDispatcher::with_table(rss, boot);
        let d1 = RssDispatcher::with_table(rss, rotated);
        for (i, p) in wl.packets.iter().enumerate() {
            // Epoch 0 steered against the boot table, epochs 1+ against the
            // last known (rotated) table.
            let d = if i < 100 { &d0 } else { &d1 };
            assert_eq!(d.queue_of_packet(p), 1, "packet {i}");
        }
        // Deterministic.
        let again = adaptive_skew_trace(
            &base,
            &[d0.table().to_vec(), d1.table().to_vec()],
            100,
            rss,
            1,
            250,
        );
        assert_eq!(wl.packets, again.packets);
    }

    #[test]
    fn neighbor_evict_workload_separates_victims_and_attacker() {
        let chain = chain_by_id(ChainId::NatLpm);
        let d = RssDispatcher::for_queues(4);
        let attacker = 3;
        let victim = generic_chain_workload(&chain, WorkloadKind::UniRand, &small_cfg());
        // Stand-in attack traffic: a handful of flows that do NOT all hash
        // to the attacker queue on their own.
        let attack: Vec<castan_packet::Packet> = (0..7u64)
            .map(|i| {
                castan_packet::PacketBuilder::new()
                    .src_ip(Ipv4Addr::new(172, 16, 0, i as u8 + 1))
                    .src_port(7000 + i as u16)
                    .dst_ip(Ipv4Addr::new(93, 184, 216, 34))
                    .dst_port(80)
                    .build()
            })
            .collect();
        let wl = neighbor_evict_workload(&victim, &attack, &d, attacker, 4);
        assert_eq!(wl.kind, WorkloadKind::NeighborEvict);
        assert!(wl.len() > victim.len(), "attack packets were interleaved");

        // Every packet on the attacker queue is attack traffic, and every
        // third+1 slot holds one; victim packets never reach the attacker.
        let mut attacker_packets = 0usize;
        for (i, p) in wl.packets.iter().enumerate() {
            let q = d.queue_of_packet(p);
            if (i + 1) % 4 == 0 {
                assert_eq!(q, attacker, "slot {i} must carry attack traffic");
                attacker_packets += 1;
            } else {
                assert_ne!(q, attacker, "victim packet {i} leaked to the attacker");
            }
        }
        assert_eq!(attacker_packets, wl.len() / 4);

        // Victim flow distinctness survives the re-steering.
        let victim_flows: std::collections::BTreeSet<u128> = wl
            .packets
            .iter()
            .filter(|p| d.queue_of_packet(p) != attacker)
            .filter_map(|p| p.flow().map(|f| f.to_u128()))
            .collect();
        assert_eq!(victim_flows.len(), victim.distinct_flows());

        // Deterministic.
        let again = neighbor_evict_workload(&victim, &attack, &d, attacker, 4);
        assert_eq!(wl.packets, again.packets);
    }

    #[test]
    fn zipfian_counts_scale() {
        let nf = nf_by_id(NfId::LpmTrie);
        let w = generic_workload(&nf, WorkloadKind::Zipfian, &small_cfg());
        assert_eq!(w.len(), 1000); // 100 005 × 0.01, rounded
        assert!(w.distinct_flows() <= 67);
        assert!(w.distinct_flows() > 5);
    }

    #[test]
    fn unirand_has_many_flows() {
        let nf = nf_by_id(NfId::NatHashTable);
        let w = generic_workload(&nf, WorkloadKind::UniRand, &small_cfg());
        assert_eq!(w.len(), 10_005);
        assert!(
            w.distinct_flows() > 5_000,
            "uniform sampling over 10k flows should hit most of them"
        );
    }

    #[test]
    fn one_packet_is_one_flow() {
        let nf = nf_by_id(NfId::LpmDirect1);
        let w = generic_workload(&nf, WorkloadKind::OnePacket, &small_cfg());
        assert_eq!(w.len(), 1);
        assert_eq!(w.distinct_flows(), 1);
    }

    #[test]
    fn lb_workloads_target_the_vip() {
        let nf = nf_by_id(NfId::LbHashTable);
        let w = generic_workload(&nf, WorkloadKind::Zipfian, &small_cfg());
        assert!(w
            .packets
            .iter()
            .all(|p| p.field(castan_packet::PacketField::DstIp) == u64::from(layout::LB_VIP)));
    }

    #[test]
    fn manual_workloads_exist_only_where_the_paper_has_them() {
        for id in NfId::ALL {
            let nf = nf_by_id(id);
            let manual = manual_workload(&nf);
            match id {
                NfId::LpmTrie | NfId::NatUnbalancedTree | NfId::LbUnbalancedTree => {
                    assert!(manual.is_some(), "{id}")
                }
                _ => assert!(manual.is_none(), "{id}"),
            }
        }
        let trie_manual = manual_workload(&nf_by_id(NfId::LpmTrie)).unwrap();
        assert_eq!(trie_manual.len(), 8);
    }

    #[test]
    fn unirand_castan_matches_flow_budget() {
        let nf = nf_by_id(NfId::LbHashRing);
        let w = unirand_castan(&nf, 40, &WorkloadConfig::default());
        assert_eq!(w.len(), 40);
        assert!(w.distinct_flows() <= 40);
        assert_eq!(w.kind, WorkloadKind::UniRandCastan);
    }

    #[test]
    fn workloads_are_deterministic() {
        let nf = nf_by_id(NfId::LpmTrie);
        let a = generic_workload(&nf, WorkloadKind::Zipfian, &small_cfg());
        let b = generic_workload(&nf, WorkloadKind::Zipfian, &small_cfg());
        assert_eq!(a.packets, b.packets);
    }
}

//! Cross-core §3.2 contention-set discovery.
//!
//! The algorithm is the paper's three-step procedure, unchanged:
//!
//! 1. grow a set `S` of candidate addresses until adding one raises the
//!    probing time by more than a contention threshold δ;
//! 2. shrink `S` to exactly α+1 members of the contention set by removing
//!    each address and checking whether the probing time drops;
//! 3. classify every remaining candidate by swapping it against a known
//!    member and checking whether the probing time stays high.
//!
//! What is new is *where it runs*: the probe loop executes on an arbitrary
//! attacker core of a [`MultiCoreHierarchy`], and the candidate pool may
//! span several cores' striped address windows. Because the L3 is shared
//! and physically indexed, the (slice, set) bucket of a line does not
//! depend on which core touches it — so the recovered sets are consistent
//! across cores ([`consistent_across_cores`] verifies this by probing from
//! every core and intersecting), and a 1-core hierarchy reproduces
//! `castan_mem::contention::discover_catalog` byte for byte (the algorithm,
//! the shuffle seeds and the threshold derivation are shared).
//!
//! [`ground_truth_catalog_on`] is the `SliceHash` oracle the discovery is
//! validated against — the same role `ContentionCatalog::from_ground_truth`
//! plays for the single-core path.
//!
//! Maintenance note: steps 1–3 here are a deliberate twin of
//! `castan_mem::contention::{discover_contention_set, discover_catalog}`
//! (this crate sits above `castan-mem`, so the single-core path cannot
//! delegate down to it). Any algorithmic change must land in both copies;
//! the tier-1 `one_core_discovery_is_the_single_core_special_case` test
//! (and its root-level proptest) pins byte-for-byte equality and fails
//! the build if the twins drift.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use castan_mem::contention::{
    consistent_catalog, ContentionCatalog, ContentionSet, DiscoveryConfig,
};
use castan_mem::probe::contention_threshold_for;
use castan_mem::{line_of, MultiCoreHierarchy};

use crate::probe::probing_time_from;

fn crossing_threshold(hier: &MultiCoreHierarchy, cfg: &DiscoveryConfig) -> u64 {
    cfg.crossing_threshold.unwrap_or_else(|| {
        u64::from(hier.l3_associativity()) * contention_threshold_for(hier.config()) / 2
    })
}

/// Builds the ground-truth catalogue for the given candidate lines by
/// asking the simulator for each line's (slice, set) bucket — the
/// multi-core counterpart of `ContentionCatalog::from_ground_truth`, with
/// identical grouping and ordering. The candidates may span any number of
/// cores' address windows; the bucket of a line does not depend on which
/// core accesses it.
///
/// Not available to a real attacker; used as the experiments' fast path and
/// as the oracle for validating [`discover_catalog_from`].
pub fn ground_truth_catalog_on(
    hier: &mut MultiCoreHierarchy,
    lines: impl IntoIterator<Item = u64>,
) -> ContentionCatalog {
    let alpha = hier.l3_associativity();
    let mut buckets: HashMap<(u32, u64), Vec<u64>> = HashMap::new();
    for l in lines {
        let l = line_of(l);
        let bucket = hier.ground_truth_bucket(l);
        let v = buckets.entry(bucket).or_default();
        if v.last() != Some(&l) {
            v.push(l);
        }
    }
    let mut sets: Vec<ContentionSet> = buckets
        .into_values()
        .map(|mut lines| {
            lines.sort_unstable();
            lines.dedup();
            ContentionSet { lines }
        })
        .collect();
    sets.sort_by(|a, b| {
        b.lines
            .len()
            .cmp(&a.lines.len())
            .then(a.lines.cmp(&b.lines))
    });
    ContentionCatalog::from_sets(sets, alpha)
}

/// Discovers **one** contention set among `candidates` (byte addresses,
/// possibly spanning several cores' address windows), probing from core
/// `prober` of a multi-core hierarchy. Returns `None` if the candidates
/// never drive the probing time across the threshold (e.g. too few
/// candidates per set).
pub fn discover_contention_set_from(
    hier: &mut MultiCoreHierarchy,
    prober: usize,
    candidates: &[u64],
    cfg: &DiscoveryConfig,
) -> Option<ContentionSet> {
    let alpha = hier.l3_associativity() as usize;
    let delta_c = crossing_threshold(hier, cfg);
    let mut order: Vec<u64> = candidates.iter().map(|&a| line_of(a)).collect();
    order.sort_unstable();
    order.dedup();
    let mut rng = StdRng::seed_from_u64(cfg.shuffle_seed);
    order.shuffle(&mut rng);

    // Step 1: grow S until the probing time jumps by more than δ.
    let mut s: Vec<u64> = Vec::new();
    let mut prev_time = 0u64;
    let mut crossed = false;
    let mut rest_start = order.len();
    for (i, &a) in order.iter().enumerate() {
        s.push(a);
        let t = probing_time_from(hier, prober, &s, cfg.probe);
        if !s.is_empty() && t > prev_time + delta_c && s.len() > alpha {
            crossed = true;
            rest_start = i + 1;
            break;
        }
        prev_time = t;
    }
    if !crossed {
        return None;
    }

    // Step 2: shrink S to exactly α+1 members of the target set C.
    let mut idx = 0;
    while idx < s.len() {
        let removed = s.remove(idx);
        let before = probing_time_from(hier, prober, &s, cfg.probe);
        let mut with = s.clone();
        with.insert(idx, removed);
        let t_with = probing_time_from(hier, prober, &with, cfg.probe);
        if t_with > before + delta_c {
            // Removing it made probing cheap again ⇒ it belongs to C.
            s.insert(idx, removed);
            idx += 1;
        }
        // Otherwise leave it out and keep idx pointing at the next element.
    }
    if s.len() < alpha + 1 {
        return None;
    }

    // Step 3: classify every remaining candidate by substitution.
    let mut members = s.clone();
    let baseline = probing_time_from(hier, prober, &s, cfg.probe);
    for &a in &order[rest_start..] {
        if s.contains(&a) {
            continue;
        }
        let mut swapped = s.clone();
        let slot = swapped.len() - 1;
        swapped[slot] = a;
        let t = probing_time_from(hier, prober, &swapped, cfg.probe);
        if t + delta_c > baseline {
            // Probing stayed expensive ⇒ the substitute collides too.
            members.push(a);
        }
    }
    members.sort_unstable();
    members.dedup();
    Some(ContentionSet { lines: members })
}

/// Discovers up to `cfg.max_sets` contention sets among `candidates` for a
/// single boot, probing from core `prober`, removing each discovered set's
/// members from the candidate pool before looking for the next one.
pub fn discover_catalog_from(
    hier: &mut MultiCoreHierarchy,
    prober: usize,
    candidates: &[u64],
    cfg: &DiscoveryConfig,
) -> ContentionCatalog {
    let alpha = hier.l3_associativity();
    let mut pool: Vec<u64> = candidates.iter().map(|&a| line_of(a)).collect();
    pool.sort_unstable();
    pool.dedup();
    let mut sets = Vec::new();
    let mut cfg = cfg.clone();
    while sets.len() < cfg.max_sets {
        match discover_contention_set_from(hier, prober, &pool, &cfg) {
            None => break,
            Some(set) => {
                pool.retain(|a| !set.lines.contains(a));
                sets.push(set);
                // Vary the shuffle per round so different sets get found
                // (the same LCG step the single-core path uses, so a 1-core
                // hierarchy reproduces its output exactly).
                cfg.shuffle_seed = cfg
                    .shuffle_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1);
            }
        }
    }
    ContentionCatalog::from_sets(sets, alpha)
}

/// Discovers one catalogue per core (probing the same candidate pool from
/// every core of the hierarchy) and intersects them with the paper's
/// consistency filter: only groups that land together in **every** per-core
/// catalogue survive. Because the shared L3 is physically indexed, the
/// per-core catalogues agree wherever discovery succeeds, so this both
/// *verifies* cross-core consistency and returns the agreed grouping.
pub fn consistent_across_cores(
    hier: &mut MultiCoreHierarchy,
    candidates: &[u64],
    cfg: &DiscoveryConfig,
) -> ContentionCatalog {
    let catalogs: Vec<ContentionCatalog> = (0..hier.n_cores())
        .map(|core| discover_catalog_from(hier, core, candidates, cfg))
        .collect();
    consistent_catalog(&catalogs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_mem::contention::{discover_catalog, discover_contention_set};
    use castan_mem::{HierarchyConfig, MemoryHierarchy, LINE_SIZE};

    fn tiny_multi(boot: u64, cores: usize) -> MultiCoreHierarchy {
        MultiCoreHierarchy::new(HierarchyConfig::tiny_for_tests(), boot, cores)
    }

    /// Candidates sharing the L3 set-index bits so the only unknown is the
    /// slice — one candidate per page, spread over two cores' windows.
    fn two_window_candidates(cfg: &HierarchyConfig, per_window: u64) -> Vec<u64> {
        let page = 1u64 << cfg.page_bits;
        let mut out: Vec<u64> = (0..per_window).map(|i| 0x10_0000 + i * page).collect();
        out.extend((0..per_window).map(|i| 0x4000_0000 + i * page));
        out
    }

    #[test]
    fn one_core_discovery_is_the_single_core_special_case() {
        // Satellite acceptance: xcore discovery on a 1-core hierarchy must
        // reproduce castan-mem's single-core output byte for byte — same
        // sets, same order — for both the single-set and the catalogue
        // entry points.
        let cfg = HierarchyConfig::tiny_for_tests();
        let span = cfg.l3_slice_geometry().sets() * LINE_SIZE;
        let candidates: Vec<u64> = (0..48u64).map(|i| 0x10_0000 + i * span).collect();
        let dcfg = DiscoveryConfig::default();

        let single_one =
            discover_contention_set(&mut MemoryHierarchy::new(cfg, 5), &candidates, &dcfg);
        let multi_one = discover_contention_set_from(
            &mut MultiCoreHierarchy::new(cfg, 5, 1),
            0,
            &candidates,
            &dcfg,
        );
        assert_eq!(single_one, multi_one);
        assert!(multi_one.is_some());

        let single_cat = discover_catalog(&mut MemoryHierarchy::new(cfg, 9), &candidates, &dcfg);
        let multi_cat = discover_catalog_from(
            &mut MultiCoreHierarchy::new(cfg, 9, 1),
            0,
            &candidates,
            &dcfg,
        );
        assert_eq!(single_cat.sets(), multi_cat.sets());
        assert_eq!(single_cat.associativity(), multi_cat.associativity());
    }

    #[test]
    fn cross_core_discovery_matches_the_oracle_and_mixes_windows() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let candidates = two_window_candidates(&cfg, 24);
        let mut h = tiny_multi(13, 2);
        let truth = ground_truth_catalog_on(&mut h, candidates.iter().copied());
        let discovered = discover_catalog_from(&mut h, 1, &candidates, &DiscoveryConfig::default());
        assert!(!discovered.is_empty());

        // Every discovered set must be a subset of one oracle bucket.
        for set in discovered.sets() {
            let bucket = truth.set_of(set.lines[0]).expect("oracle knows the line");
            for &l in &set.lines {
                assert_eq!(truth.set_of(l), Some(bucket), "line {l:#x} misgrouped");
            }
        }
        // And discovery must have found genuinely cross-core contention:
        // at least one set containing lines from both windows.
        let mixed = discovered.sets().iter().any(|s| {
            s.lines.iter().any(|&l| l < 0x4000_0000) && s.lines.iter().any(|&l| l >= 0x4000_0000)
        });
        assert!(mixed, "expected a set mixing victim and attacker windows");
    }

    #[test]
    fn discovery_recovers_at_least_ninety_percent_per_slice() {
        // Satellite acceptance: per ground-truth bucket (one per slice for
        // this same-set-index candidate pattern), the attacker-core
        // discovery recovers >= 90% of the oracle's member lines.
        for boot in [5u64, 13, 29] {
            let cfg = HierarchyConfig::tiny_for_tests();
            let candidates = two_window_candidates(&cfg, 20);
            let mut h = tiny_multi(boot, 2);
            let truth = ground_truth_catalog_on(&mut h, candidates.iter().copied());
            let discovered =
                discover_catalog_from(&mut h, 1, &candidates, &DiscoveryConfig::default());
            for (i, truth_set) in truth.sets().iter().enumerate() {
                if truth_set.len() <= h.l3_associativity() as usize {
                    continue; // cannot cross the threshold: undiscoverable
                }
                let recovered = truth_set
                    .lines
                    .iter()
                    .filter(|&&l| {
                        discovered
                            .set_of(l)
                            .is_some_and(|d| discovered.members(d).len() > 1)
                    })
                    .count();
                assert!(
                    recovered * 10 >= truth_set.len() * 9,
                    "boot {boot}, bucket {i}: recovered {recovered}/{} lines",
                    truth_set.len()
                );
            }
        }
    }

    #[test]
    fn discovery_is_deterministic_under_a_fixed_seed() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let candidates = two_window_candidates(&cfg, 16);
        let dcfg = DiscoveryConfig::default();
        let a = discover_catalog_from(&mut tiny_multi(7, 2), 1, &candidates, &dcfg);
        let b = discover_catalog_from(&mut tiny_multi(7, 2), 1, &candidates, &dcfg);
        assert_eq!(a.sets(), b.sets());
        // A different shuffle seed may group differently, but the same seed
        // must never diverge; a different boot genuinely remaps frames.
        let c = discover_catalog_from(&mut tiny_multi(8, 2), 1, &candidates, &dcfg);
        assert!(!c.is_empty());
    }

    #[test]
    fn catalogs_are_consistent_across_prober_cores() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let candidates = two_window_candidates(&cfg, 16);
        let mut h = tiny_multi(21, 4);
        let reference = discover_catalog_from(&mut h, 0, &candidates, &DiscoveryConfig::default());
        for core in 1..4 {
            let other =
                discover_catalog_from(&mut h, core, &candidates, &DiscoveryConfig::default());
            assert_eq!(reference.sets(), other.sets(), "prober core {core}");
        }
        let consistent = consistent_across_cores(&mut h, &candidates, &DiscoveryConfig::default());
        assert!(!consistent.is_empty());
        // Consistent groups are subsets of the per-core grouping.
        for set in consistent.sets() {
            let bucket = reference.set_of(set.lines[0]).expect("known line");
            for &l in &set.lines {
                assert_eq!(reference.set_of(l), Some(bucket));
            }
        }
    }
}

//! # castan-xcore
//!
//! Cross-core contention discovery and eviction planning over the shared,
//! inclusive, sliced L3 of the multi-core runtime.
//!
//! The paper's §3.2 reverse-engineers *contention sets* — groups of
//! addresses that collide in one (slice, set) bucket of the L3 — by timing
//! pointer-chase probes on a single core. Since the testbed grew a
//! multi-core RSS runtime (`castan-mem::multicore`, `castan-testbed::shard`),
//! the same physical L3 is shared by every core, and inclusivity makes it a
//! *second adversarial surface*: filling a bucket from one core
//! back-invalidates the colliding lines out of every other core's private
//! L1/L2. This crate weaponizes that:
//!
//! * [`probe`] — the §3.2 pointer-chase probing-time measurement, run from
//!   an arbitrary *prober core* of a
//!   [`MultiCoreHierarchy`](castan_mem::MultiCoreHierarchy): probes charge
//!   through the prober's private levels into the shared L3, which is how a
//!   neighbour core observes contention with a victim core's lines.
//! * [`discover`] — the three-step §3.2 discovery algorithm, core-aware:
//!   the candidate pool may span several cores' address windows, and the
//!   recovered grouping is validated against the simulator's `SliceHash`
//!   ground-truth oracle exactly like the single-core path. A 1-core
//!   hierarchy reproduces `castan-mem::contention`'s output byte for byte
//!   (pinned by tests), and catalogues probed from different cores agree —
//!   the sets are *consistent across cores*.
//! * [`plan`] — the chain-aware feedback into analysis: map a victim
//!   chain's hot state (per-line heat of the striped per-core stage
//!   regions the sharded DUT assigns) onto the discovered buckets and emit
//!   a ranked [`EvictionPlan`] — which attacker-core lines to touch to
//!   evict which victim-stage lines. The plan drives both the
//!   noisy-neighbour replay mode of `castan-testbed::shard` and the
//!   packet-only synthesis of `castan-core::rss::analyze_chain_cross_core`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod discover;
pub mod plan;
pub mod probe;

pub use discover::{
    consistent_across_cores, discover_catalog_from, discover_contention_set_from,
    ground_truth_catalog_on,
};
pub use plan::{
    build_eviction_plan, premap_deployment, random_neighbor_lines, EvictionPlan, HotLineMap,
    PlanEntry, XCoreConfig,
};
pub use probe::probing_time_from;

//! Chain-aware eviction planning: from a victim core's hot lines to a
//! ranked list of attacker-core lines that evict them.
//!
//! The sharded DUT stripes one chain instance per core at
//! `core_stage_base(core, stage)` (`castan-chain`), so a victim stage's hot
//! state and the attacker core's own instance of the same (or any other)
//! stage never *share* lines — but they do *collide* in the shared L3
//! wherever their physical (slice, set) buckets coincide. An
//! [`EvictionPlan`] records exactly those collisions, hottest victim bucket
//! first:
//!
//! 1. profile the victim's per-line heat
//!    (`castan_testbed::shard::ShardedDut::profile_heat` →
//!    [`HotLineMap`]);
//! 2. group the hot lines into L3 buckets and rank buckets by the victim
//!    weight they carry ([`build_eviction_plan`]);
//! 3. for each bucket, enumerate the attacker-window lines (inside the
//!    attacker core's stage data regions) that land in the same bucket —
//!    candidates are walked by set-index congruence, so only one line per
//!    `slice_sets × 64` bytes is ever queried;
//! 4. keep buckets with more than α attacker-reachable lines (an α-way set
//!    the attacker cannot overflow never evicts).
//!
//! The bucket grouping comes from either the `SliceHash` ground-truth
//! oracle (the experiments' fast path) or the core-aware §3.2 discovery of
//! [`crate::discover`], which is validated against that oracle. Both the
//! oracle and the measured deployment must premap the deployment's pages in
//! the canonical order ([`premap_deployment`]) — frame assignment is
//! first-touch ordered, so an unpremapped oracle would disagree with the
//! DUT about every line's hidden slice.

use castan_chain::{chain_page_anchors, core_stage_base, NfChain};
use castan_mem::{line_of, ContentionCatalog, ContentionSet, MultiCoreHierarchy, LINE_SIZE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The victim's hot lines, hottest first: virtual line addresses (in the
/// shared address space of the multi-core hierarchy, i.e. already offset by
/// the victim's core/stage bases) with the access-count weight of each.
#[derive(Clone, Debug, Default)]
pub struct HotLineMap {
    entries: Vec<(u64, u64)>,
}

impl HotLineMap {
    /// Builds the map from per-line access counts (as returned hottest-first
    /// by `MultiCoreHierarchy::take_heat`), keeping the `top_k` hottest
    /// lines. Unsorted input is accepted and sorted (count descending, line
    /// ascending).
    pub fn from_heat(heat: &[(u64, u64)], top_k: usize) -> Self {
        Self::from_heat_bounded(heat, top_k, u64::MAX)
    }

    /// [`HotLineMap::from_heat`] with an *evictability* cap: lines touched
    /// more than `max_count` times are dropped. An α-way LRU set protects a
    /// line that is re-touched faster than the attacker can push α other
    /// lines through its set, so the very hottest lines (per-packet
    /// counters, top-of-structure nodes) are poor targets for the
    /// packet-borne attack; the valuable targets are the hottest lines
    /// *below* that re-touch rate. The noisy-neighbour replay mode, which
    /// storms whole buckets between batches, does not need the cap.
    pub fn from_heat_bounded(heat: &[(u64, u64)], top_k: usize, max_count: u64) -> Self {
        // Aggregate per cache line first: byte addresses within one line are
        // one target, and counting them separately would both waste top_k
        // slots and double-count the line's bucket weight. The evictability
        // cap applies to the aggregated per-line count.
        let mut per_line: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &(addr, count) in heat {
            *per_line.entry(line_of(addr)).or_insert(0) += count;
        }
        let mut entries: Vec<(u64, u64)> = per_line
            .into_iter()
            .filter(|&(_, count)| count <= max_count)
            .collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(top_k);
        HotLineMap { entries }
    }

    /// The `(line, weight)` entries, hottest first.
    pub fn entries(&self) -> &[(u64, u64)] {
        &self.entries
    }

    /// The hot lines, hottest first.
    pub fn lines(&self) -> impl Iterator<Item = u64> + '_ {
        self.entries.iter().map(|&(l, _)| l)
    }

    /// Number of hot lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no lines were profiled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Tuning knobs of the eviction-plan construction.
#[derive(Clone, Copy, Debug)]
pub struct XCoreConfig {
    /// The neighbour core whose address window supplies the eviction lines
    /// (and onto which packet-borne attack traffic is steered).
    pub attacker_core: usize,
    /// How many victim (slice, set) buckets to target, hottest first. Few,
    /// heavily stormed sets evict reliably (the L3 is α-way); many, lightly
    /// touched sets do not.
    pub max_target_sets: usize,
    /// Attacker candidate lines kept per targeted bucket (across all
    /// stages). Must comfortably exceed the L3 associativity for the storm
    /// to keep missing — and keep evicting — in the steady state.
    pub max_lines_per_set: usize,
}

impl Default for XCoreConfig {
    fn default() -> Self {
        XCoreConfig {
            attacker_core: 1,
            max_target_sets: 16,
            max_lines_per_set: 48,
        }
    }
}

/// One ranked entry of an [`EvictionPlan`]: a victim L3 bucket, the victim
/// lines it holds, and the attacker-core lines that collide with it.
#[derive(Clone, Debug)]
pub struct PlanEntry {
    /// The targeted (slice, set) bucket of the shared L3.
    pub bucket: (u32, u64),
    /// Aggregated victim heat landing in this bucket (the rank key).
    pub victim_weight: u64,
    /// The victim's hot lines in this bucket (absolute virtual addresses).
    pub victim_lines: Vec<u64>,
    /// Attacker-reachable colliding lines, *stage-local* per chain stage
    /// (`stage_lines[s]` are addresses inside stage `s`'s data regions, as
    /// the NF's own lookups see them).
    pub stage_lines: Vec<Vec<u64>>,
}

impl PlanEntry {
    /// Total attacker lines across all stages.
    pub fn attacker_line_count(&self) -> usize {
        self.stage_lines.iter().map(Vec::len).sum()
    }

    /// The attacker lines as absolute virtual addresses in `attacker_core`'s
    /// window (what the noisy-neighbour replay touches).
    pub fn absolute_attacker_lines(&self, attacker_core: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.attacker_line_count());
        for (s, lines) in self.stage_lines.iter().enumerate() {
            let base = core_stage_base(attacker_core, s);
            out.extend(lines.iter().map(|&l| base + l));
        }
        out
    }
}

/// A ranked cross-core eviction plan: which attacker-core lines to touch to
/// evict which victim-stage lines, hottest victim bucket first.
#[derive(Clone, Debug)]
pub struct EvictionPlan {
    /// The neighbour core whose window supplies the lines.
    pub attacker_core: usize,
    /// L3 associativity α the plan was built against.
    pub alpha: u32,
    /// Ranked entries (victim weight descending).
    pub entries: Vec<PlanEntry>,
    n_stages: usize,
}

impl EvictionPlan {
    /// Number of targeted buckets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no bucket had more than α attacker-reachable lines.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total victim weight the plan attacks.
    pub fn victim_weight(&self) -> u64 {
        self.entries.iter().map(|e| e.victim_weight).sum()
    }

    /// The replay sequence of the noisy-neighbour mode: every entry's
    /// absolute attacker lines, rank order (hottest bucket's storm first).
    /// Replaying this cyclically pushes more than α distinct lines through
    /// every targeted bucket per cycle, which is what keeps the victim's
    /// lines evicted in the steady state.
    pub fn replay_lines(&self) -> Vec<u64> {
        let mut out = Vec::new();
        for e in &self.entries {
            out.extend(e.absolute_attacker_lines(self.attacker_core));
        }
        out
    }

    /// One single-bucket, per-stage catalogue per plan entry, in rank
    /// order — the rounds of the packet-only synthesis
    /// (`castan-core::rss::analyze_chain_cross_core`): round `r`'s
    /// catalogue tells the analysis-time cache model to storm exactly the
    /// stage-local lines of entry `r`.
    pub fn round_stage_catalogs(&self) -> Vec<Vec<ContentionCatalog>> {
        self.entries
            .iter()
            .map(|e| {
                (0..self.n_stages)
                    .map(|s| {
                        let lines = &e.stage_lines[s];
                        let sets = if lines.len() > self.alpha as usize {
                            vec![ContentionSet {
                                lines: lines.clone(),
                            }]
                        } else {
                            Vec::new()
                        };
                        ContentionCatalog::from_sets(sets, self.alpha)
                    })
                    .collect()
            })
            .collect()
    }

    /// A compact human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{} buckets targeted from core {} ({} replay lines, victim weight {})",
            self.len(),
            self.attacker_core,
            self.replay_lines().len(),
            self.victim_weight(),
        )
    }
}

/// Premaps `hier` with the deployment's canonical page anchors (every core's
/// stage data regions, core-major order) — the same order the sharded DUT
/// uses when `premap_pages` is on. Call this on a fresh oracle before asking
/// it for buckets; see the module docs for why the order matters.
pub fn premap_deployment(chain: &NfChain, n_cores: usize, hier: &mut MultiCoreHierarchy) {
    for anchor in chain_page_anchors(chain, n_cores, hier.config().page_bits) {
        hier.map_page(anchor);
    }
}

/// The hottest victim (slice, set) buckets, weight-aggregated over the hot
/// lines that land in each, hottest first. The oracle must already be
/// premapped ([`premap_deployment`]).
fn hottest_buckets(
    hot: &HotLineMap,
    oracle: &mut MultiCoreHierarchy,
    max_target_sets: usize,
) -> Vec<((u32, u64), u64, Vec<u64>)> {
    let mut buckets: Vec<((u32, u64), u64, Vec<u64>)> = Vec::new();
    for &(line, weight) in hot.entries() {
        let bucket = oracle.ground_truth_bucket(line);
        match buckets.iter_mut().find(|(b, _, _)| *b == bucket) {
            Some((_, w, lines)) => {
                *w += weight;
                lines.push(line);
            }
            None => buckets.push((bucket, weight, vec![line])),
        }
    }
    buckets.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    buckets.truncate(max_target_sets);
    buckets
}

/// Builds the ranked eviction plan for a chain deployment of `n_cores`
/// cores: maps the victim's [`HotLineMap`] onto L3 buckets through `oracle`
/// (premapping it first) and enumerates, per bucket, the colliding lines
/// inside the attacker core's own stage data regions. Buckets without more
/// than α attacker-reachable lines are dropped — the attacker cannot
/// overflow them, so touching them would never evict.
pub fn build_eviction_plan(
    chain: &NfChain,
    hot: &HotLineMap,
    oracle: &mut MultiCoreHierarchy,
    n_cores: usize,
    cfg: &XCoreConfig,
) -> EvictionPlan {
    assert!(cfg.attacker_core < n_cores, "attacker core out of range");
    premap_deployment(chain, n_cores, oracle);
    let alpha = oracle.l3_associativity();
    let slice_sets = oracle.config().l3_slice_geometry().sets();
    let set_span = slice_sets * LINE_SIZE;
    // The set-index bits must sit inside the page offset, so that a line's
    // set index is readable off its *virtual* address and candidates can be
    // enumerated by congruence instead of scanning whole regions.
    assert!(
        set_span <= 1u64 << oracle.config().page_bits,
        "L3 set index must fit inside the page offset"
    );

    let mut entries = Vec::new();
    for (bucket, weight, victim_lines) in hottest_buckets(hot, oracle, cfg.max_target_sets) {
        let (slice, set) = bucket;
        let mut stage_lines: Vec<Vec<u64>> = vec![Vec::new(); chain.len()];
        let mut kept = 0usize;
        'stages: for (stage_idx, stage) in chain.stages.iter().enumerate() {
            let base = core_stage_base(cfg.attacker_core, stage_idx);
            for region in &stage.nf.data_regions {
                let start = base + region.base;
                let end = base + region.end();
                // First line >= start whose virtual set-index bits equal
                // `set`, then every set_span bytes (same set index; the
                // oracle filters for the slice).
                let set_offset = set * LINE_SIZE;
                let mut a = (start / set_span) * set_span + set_offset;
                if a < start {
                    a += set_span;
                }
                while a < end && kept < cfg.max_lines_per_set {
                    if oracle.ground_truth_bucket(a) == (slice, set) {
                        // Stage-local address, as the analysis engine (and
                        // the NF's own lookups) see it.
                        stage_lines[stage_idx].push(a - base);
                        kept += 1;
                    }
                    a += set_span;
                }
                if kept >= cfg.max_lines_per_set {
                    break 'stages;
                }
            }
        }
        if kept > alpha as usize {
            for lines in &mut stage_lines {
                lines.sort_unstable();
            }
            entries.push(PlanEntry {
                bucket,
                victim_weight: weight,
                victim_lines,
                stage_lines,
            });
        }
    }
    EvictionPlan {
        attacker_core: cfg.attacker_core,
        alpha,
        entries,
        n_stages: chain.len(),
    }
}

/// The equal-rate control of the noisy-neighbour experiment: `n`
/// pseudo-random line-aligned addresses drawn uniformly from the attacker
/// core's stage data regions, deterministic given `seed`. Same address
/// window, same touch rate as a planned replay — but with no knowledge of
/// the victim's buckets, so its L3 pressure is spread over all sets instead
/// of concentrated on the victim's.
pub fn random_neighbor_lines(
    chain: &NfChain,
    attacker_core: usize,
    n: usize,
    seed: u64,
) -> Vec<u64> {
    let mut spans: Vec<(u64, u64)> = Vec::new(); // (absolute start, lines)
    for (stage_idx, stage) in chain.stages.iter().enumerate() {
        let base = core_stage_base(attacker_core, stage_idx);
        for region in &stage.nf.data_regions {
            let lines = region.len / LINE_SIZE;
            if lines > 0 {
                spans.push((base + region.base, lines));
            }
        }
    }
    assert!(!spans.is_empty(), "the chain has no data regions to touch");
    let total: u64 = spans.iter().map(|&(_, l)| l).sum();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let mut pick = rng.random_range(0..total);
            for &(start, lines) in &spans {
                if pick < lines {
                    return line_of(start) + pick * LINE_SIZE;
                }
                pick -= lines;
            }
            unreachable!("pick < total by construction")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_chain::{chain_by_id, ChainId, CORE_ADDR_STRIDE};
    use castan_mem::HierarchyConfig;

    fn xeon_oracle(cores: usize) -> MultiCoreHierarchy {
        MultiCoreHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), 1, cores)
    }

    #[test]
    fn hot_line_map_sorts_truncates_and_caps() {
        let heat = vec![(0x1049, 3), (0x2000, 9), (0x3000, 9), (0x4000, 1)];
        let map = HotLineMap::from_heat(&heat, 3);
        assert_eq!(map.len(), 3);
        assert_eq!(
            map.entries(),
            &[(0x2000, 9), (0x3000, 9), (0x1040, 3)],
            "count desc, line asc, byte addresses line-aligned"
        );
        assert!(!map.is_empty());
        assert_eq!(map.lines().next(), Some(0x2000));
        // The evictability cap drops the over-hot lines.
        let capped = HotLineMap::from_heat_bounded(&heat, 4, 5);
        assert_eq!(capped.entries(), &[(0x1040, 3), (0x4000, 1)]);
        // Byte addresses within one line aggregate before the cap applies.
        let split = vec![(0x5000, 3), (0x5010, 4)];
        assert_eq!(
            HotLineMap::from_heat_bounded(&split, 4, 6).entries(),
            &[] as &[(u64, u64)],
            "aggregated count 7 exceeds the cap"
        );
    }

    #[test]
    fn plan_targets_victim_buckets_with_reachable_lines() {
        let chain = chain_by_id(ChainId::NatLpm);
        let mut oracle = xeon_oracle(2);
        // Victim = core 0: fake a profile of hot lines inside the victim's
        // instance of each stage.
        let victim_a = core_stage_base(0, 0) + chain.stages[0].nf.data_regions[0].base + 0x1000;
        let victim_b = core_stage_base(0, 1) + chain.stages[1].nf.data_regions[0].base + 0x4040;
        let hot = HotLineMap::from_heat(&[(victim_a, 500), (victim_b, 300)], 8);
        let cfg = XCoreConfig {
            attacker_core: 1,
            max_target_sets: 2,
            max_lines_per_set: 40,
        };
        let plan = build_eviction_plan(&chain, &hot, &mut oracle, 2, &cfg);
        assert!(
            !plan.is_empty(),
            "the NF regions must supply colliding lines"
        );
        assert_eq!(plan.attacker_core, 1);

        let alpha = plan.alpha as usize;
        for entry in &plan.entries {
            assert!(
                entry.attacker_line_count() > alpha,
                "entries must be able to overflow α"
            );
            // Victim lines really belong to the bucket, and rank weight is
            // their aggregated heat.
            for &l in &entry.victim_lines {
                assert_eq!(oracle.ground_truth_bucket(l), entry.bucket);
            }
            // Every attacker line is reachable (inside a stage region of
            // the attacker window) and collides with the victim bucket.
            for (s, lines) in entry.stage_lines.iter().enumerate() {
                let base = core_stage_base(1, s);
                for &l in lines {
                    assert!(
                        chain.stages[s]
                            .nf
                            .data_regions
                            .iter()
                            .any(|r| r.contains(l)),
                        "line {l:#x} outside stage {s} regions"
                    );
                    assert!(
                        base + l < 2 * CORE_ADDR_STRIDE,
                        "inside the attacker window"
                    );
                    assert_eq!(oracle.ground_truth_bucket(base + l), entry.bucket);
                }
            }
        }
        // Rank order is by victim weight, and the replay flattens rank-major.
        for w in plan.entries.windows(2) {
            assert!(w[0].victim_weight >= w[1].victim_weight);
        }
        let replay = plan.replay_lines();
        assert_eq!(
            replay.len(),
            plan.entries
                .iter()
                .map(PlanEntry::attacker_line_count)
                .sum::<usize>()
        );
        assert!(replay
            .iter()
            .all(|&a| (CORE_ADDR_STRIDE..2 * CORE_ADDR_STRIDE).contains(&a)));
        assert!(plan.summary().contains("core 1"));

        // Round catalogues mirror the entries: one single-set catalogue per
        // stage that has enough lines, in rank order.
        let rounds = plan.round_stage_catalogs();
        assert_eq!(rounds.len(), plan.len());
        for (round, entry) in rounds.iter().zip(&plan.entries) {
            assert_eq!(round.len(), chain.len());
            for (s, cat) in round.iter().enumerate() {
                if entry.stage_lines[s].len() > alpha {
                    assert_eq!(cat.len(), 1);
                    assert_eq!(cat.members(0), entry.stage_lines[s].as_slice());
                } else {
                    assert!(cat.is_empty());
                }
            }
        }
    }

    #[test]
    fn plan_is_deterministic_and_premapping_makes_oracles_agree() {
        let chain = chain_by_id(ChainId::NatLpm);
        let victim = core_stage_base(0, 1) + chain.stages[1].nf.data_regions[0].base + 0x100_0040;
        let hot = HotLineMap::from_heat(&[(victim, 100)], 4);
        let cfg = XCoreConfig::default();
        let plan_a = build_eviction_plan(&chain, &hot, &mut xeon_oracle(2), 2, &cfg);
        let plan_b = build_eviction_plan(&chain, &hot, &mut xeon_oracle(2), 2, &cfg);
        assert_eq!(plan_a.replay_lines(), plan_b.replay_lines());
        // An oracle that answered unrelated queries first still agrees,
        // because premapping fixed the frame order up front.
        let mut perturbed = xeon_oracle(2);
        premap_deployment(&chain, 2, &mut perturbed);
        let _ = perturbed.ground_truth_bucket(victim + 0x40);
        let plan_c = build_eviction_plan(&chain, &hot, &mut perturbed, 2, &cfg);
        assert_eq!(plan_a.replay_lines(), plan_c.replay_lines());
    }

    #[test]
    fn random_neighbor_lines_are_deterministic_reachable_and_spread() {
        let chain = chain_by_id(ChainId::NatLpm);
        let a = random_neighbor_lines(&chain, 1, 256, 0xDEAD);
        let b = random_neighbor_lines(&chain, 1, 256, 0xDEAD);
        assert_eq!(a, b, "seeded determinism");
        assert_ne!(a, random_neighbor_lines(&chain, 1, 256, 0xBEEF));
        assert_eq!(a.len(), 256);
        for &addr in &a {
            assert_eq!(addr % LINE_SIZE, 0);
            assert!((CORE_ADDR_STRIDE..2 * CORE_ADDR_STRIDE).contains(&addr));
            let local = addr - CORE_ADDR_STRIDE;
            let in_region = chain.stages.iter().enumerate().any(|(s, stage)| {
                let stage_base = s as u64 * castan_chain::STAGE_ADDR_STRIDE;
                local >= stage_base
                    && stage
                        .nf
                        .data_regions
                        .iter()
                        .any(|r| r.contains(local - stage_base))
            });
            assert!(in_region, "line {addr:#x} outside the attacker's regions");
        }
        // Uniform draws over >= 512 MiB of regions rarely repeat a line.
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert!(dedup.len() > 200, "draws should be spread out");
    }
}

//! Core-aware pointer-chase probing.
//!
//! `castan-mem::probe` measures a candidate set's probing time on the
//! single-core hierarchy. The cross-core prober needs the same measurement
//! *from a chosen core* of a multi-core hierarchy: the sweep is charged
//! through that core's private L1/L2 in front of the shared L3, so
//! back-invalidation-driven latency jumps — a neighbour's lines falling out
//! of the shared L3 — show up in the prober's own timing. The measurement
//! semantics (flush, warm, measure against a contention threshold δ) are
//! identical to the single-core path, which is what makes 1-core probing a
//! special case rather than a reimplementation.

use castan_mem::probe::ProbeConfig;
use castan_mem::MultiCoreHierarchy;

/// Measures the steady-state probing time (cycles per sweep) of `addrs`,
/// swept from core `prober` of a multi-core hierarchy.
///
/// All caches are flushed first, then the set is swept `cfg.reps` times;
/// the cycles of the final sweep are returned. A set whose contention sets
/// fit within associativity converges to all-hits; a set exceeding
/// associativity keeps missing every sweep — the signal the discovery
/// algorithm thresholds on. On a 1-core hierarchy this reproduces
/// `castan_mem::probe::probing_time` exactly.
pub fn probing_time_from(
    hier: &mut MultiCoreHierarchy,
    prober: usize,
    addrs: &[u64],
    cfg: ProbeConfig,
) -> u64 {
    assert!(cfg.reps >= 2, "need at least one warm-up sweep");
    hier.flush_caches();
    let mut last_sweep = 0;
    for _ in 0..cfg.reps {
        last_sweep = 0;
        for &a in addrs {
            last_sweep += hier.read(prober, a).cycles;
        }
    }
    last_sweep
}

#[cfg(test)]
mod tests {
    use super::*;
    use castan_mem::probe::probing_time;
    use castan_mem::{HierarchyConfig, MemoryHierarchy, LINE_SIZE};

    #[test]
    fn one_core_probing_matches_the_single_core_prober() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let addrs: Vec<u64> = (0..24).map(|i| 0x9000 + i * 3 * LINE_SIZE).collect();
        let mut single = MemoryHierarchy::new(cfg, 3);
        let mut multi = MultiCoreHierarchy::new(cfg, 3, 1);
        assert_eq!(
            probing_time(&mut single, &addrs, ProbeConfig::default()),
            probing_time_from(&mut multi, 0, &addrs, ProbeConfig::default()),
        );
    }

    #[test]
    fn any_prober_core_measures_the_same_shared_l3() {
        // The probing time is dominated by the shared L3 and DRAM; the
        // prober's identity must not change the steady-state measurement
        // (every core has identical, initially-empty private levels).
        let cfg = HierarchyConfig::tiny_for_tests();
        let span = cfg.l3_slice_geometry().sets() * LINE_SIZE;
        let addrs: Vec<u64> = (0..32).map(|i| 0x40_0000 + i * span).collect();
        let mut h = MultiCoreHierarchy::new(cfg, 3, 4);
        let baseline = probing_time_from(&mut h, 0, &addrs, ProbeConfig::default());
        for core in 1..4 {
            assert_eq!(
                probing_time_from(&mut h, core, &addrs, ProbeConfig::default()),
                baseline,
                "prober core {core} diverged"
            );
        }
    }

    #[test]
    fn oversubscribed_sets_stay_expensive_from_a_neighbour_core() {
        let cfg = HierarchyConfig::tiny_for_tests();
        let span = cfg.l3_slice_geometry().sets() * LINE_SIZE;
        let addrs: Vec<u64> = (0..64).map(|i| 0x80_0000 + i * span).collect();
        let mut h = MultiCoreHierarchy::new(cfg, 3, 2);
        let t = probing_time_from(&mut h, 1, &addrs, ProbeConfig::default());
        let lat = cfg.latencies;
        assert!(
            t >= 8 * lat.dram,
            "expected sustained DRAM traffic, got {t}"
        );
    }
}

//! Reverse engineering cache contention sets by probing (§3.2).
//!
//! Runs the paper's three-step contention-set discovery against the
//! simulated memory hierarchy (grow a candidate set until the probing time
//! jumps, shrink it to α+1 members, classify the remaining candidates),
//! repeats it across "reboots", keeps the consistent sets, and validates the
//! result against the simulator's ground truth.
//!
//! ```text
//! cargo run --release --example cache_contention
//! ```

use castan_suite::mem::contention::{consistent_catalog, discover_catalog, DiscoveryConfig};
use castan_suite::mem::{ContentionCatalog, HierarchyConfig, MemoryHierarchy, LINE_SIZE};

fn main() {
    // Candidate addresses sharing the publicly known L1/L2/L3 set-index bits
    // (Fig. 1 of the paper): only the proprietary slice assignment is
    // unknown, which is exactly the situation the discovery handles.
    let config = HierarchyConfig::tiny_for_tests();
    let span = config.l3_slice_geometry().sets() * LINE_SIZE;
    let candidates: Vec<u64> = (0..64).map(|i| 0x10_0000 + i * span).collect();
    println!(
        "probing {} candidate addresses (same set-index bits, unknown slice)…",
        candidates.len()
    );

    // Discover per-boot catalogues and intersect them into consistent sets.
    let mut per_boot = Vec::new();
    for boot in [11u64, 22, 33] {
        let mut hier = MemoryHierarchy::new(config, boot);
        let catalog = discover_catalog(&mut hier, &candidates, &DiscoveryConfig::default());
        println!(
            "boot {boot}: discovered {} contention sets, sizes {:?}",
            catalog.len(),
            catalog.sets().iter().map(|s| s.len()).collect::<Vec<_>>()
        );
        per_boot.push(catalog);
    }
    let consistent = consistent_catalog(&per_boot);
    println!(
        "consistent across boots: {} sets, sizes {:?}",
        consistent.len(),
        consistent
            .sets()
            .iter()
            .map(|s| s.len())
            .collect::<Vec<_>>()
    );

    // Validate against the simulator's ground truth (not available to a real
    // attacker; the point of the exercise is that probing alone recovers it).
    let mut oracle_hier = MemoryHierarchy::new(config, 99);
    let truth = ContentionCatalog::from_ground_truth(&mut oracle_hier, candidates.iter().copied());
    let mut pure = 0usize;
    for set in consistent.sets() {
        let bucket = truth.set_of(set.lines[0]);
        if set.lines.iter().all(|l| truth.set_of(*l) == bucket) {
            pure += 1;
        }
    }
    println!(
        "{pure}/{} consistent sets are pure subsets of true (slice, set) groups",
        consistent.len()
    );
}

//! Hash-collision attack on the stateful NAT (§5.4).
//!
//! Runs CASTAN against the NAT built on a 65 536-bucket chaining hash table,
//! showing the havocing of the flow hash, the rainbow-table reconciliation,
//! and the effect of the synthesized workload compared against a
//! hand-crafted skew workload on the unbalanced-tree NAT (§5.3).
//!
//! ```text
//! cargo run --release --example nat_collisions
//! ```

use castan_suite::analysis::{AnalysisConfig, Castan};
use castan_suite::mem::{ContentionCatalog, HierarchyConfig, MemoryHierarchy};
use castan_suite::nf::{nf_by_id, NfId};
use castan_suite::testbed::{measure, MeasurementConfig};
use castan_suite::workload::{
    castan_workload, generic_workload, manual_workload, WorkloadConfig, WorkloadKind,
};

fn catalog_for(nf: &castan_suite::nf::NfSpec) -> ContentionCatalog {
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), 1);
    let mut lines = Vec::new();
    for region in &nf.data_regions {
        let stride = (region.len / 4096).max(64);
        let mut a = region.base;
        while a < region.end() && lines.len() < 8192 {
            lines.push(a);
            a += stride;
        }
    }
    ContentionCatalog::from_ground_truth(&mut hierarchy, lines)
}

fn main() {
    let nat = nf_by_id(NfId::NatHashTable);
    println!(
        "analyzing {} (two flow-table entries per flow, §5.4)…",
        nat.name()
    );
    let config = AnalysisConfig {
        packets: 30,
        step_budget: 80_000,
        ..Default::default()
    };
    let report = Castan::new(config).analyze(&nat, &catalog_for(&nat));
    println!("{}", report.summary());
    println!(
        "havocs on the chosen path: {} total, {} reconciled via rainbow tables",
        report.havocs_total, report.havocs_reconciled
    );

    let meas = MeasurementConfig {
        total_packets: 20_000,
        warmup_packets: 2_000,
        ..Default::default()
    };
    let castan_wl = castan_workload(report.packets.clone());
    let zipf = generic_workload(&nat, WorkloadKind::Zipfian, &WorkloadConfig::scaled(0.05));
    let m_castan = measure(&nat, &castan_wl, &meas);
    let m_zipf = measure(&nat, &zipf, &meas);
    println!(
        "\nNAT/hash table   Zipfian: {:.0} ns median, CASTAN ({} pkts): {:.0} ns median",
        m_zipf.median_latency_ns(),
        castan_wl.len(),
        m_castan.median_latency_ns()
    );

    // Contrast with the algorithmic-complexity attack where human intuition
    // is enough: the unbalanced-tree NAT and its Manual skew workload.
    let nat_tree = nf_by_id(NfId::NatUnbalancedTree);
    let manual = manual_workload(&nat_tree).expect("the unbalanced tree has a Manual workload");
    let m_manual = measure(&nat_tree, &manual, &meas);
    let m_tree_zipf = measure(
        &nat_tree,
        &generic_workload(
            &nat_tree,
            WorkloadKind::Zipfian,
            &WorkloadConfig::scaled(0.05),
        ),
        &meas,
    );
    println!(
        "NAT/unbalanced tree   Zipfian: {:.0} ns median, Manual skew ({} pkts): {:.0} ns median ({:.0} extra instructions/packet)",
        m_tree_zipf.median_latency_ns(),
        manual.len(),
        m_manual.median_latency_ns(),
        m_manual.median_instructions() - m_tree_zipf.median_instructions(),
    );
}

//! Quickstart: synthesize an adversarial workload for one NF and compare it
//! against typical traffic on the simulated testbed.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use castan_suite::analysis::{AnalysisConfig, Castan};
use castan_suite::mem::{ContentionCatalog, HierarchyConfig, MemoryHierarchy};
use castan_suite::nf::{nf_by_id, NfId};
use castan_suite::testbed::{measure, MeasurementConfig};
use castan_suite::workload::{castan_workload, generic_workload, WorkloadConfig, WorkloadKind};

fn main() {
    // 1. Pick an NF: the LPM with a one-stage direct-lookup table (512 MiB
    //    array), the paper's showcase for adversarial memory access (§5.2).
    let nf = nf_by_id(NfId::LpmDirect1);
    println!("analyzing {} …", nf.name());

    // 2. Build the processor cache model: contention sets over the NF's
    //    data-structure region (ground-truth fast path; see the
    //    cache_contention example for the probing-based discovery of §3.2).
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), 1);
    let region = nf.data_regions[0];
    let lines = (0..4096u64).map(|i| region.base + (i * 1024 * 64) % region.len);
    let catalog = ContentionCatalog::from_ground_truth(&mut hierarchy, lines);

    // 3. Run CASTAN: directed symbolic execution over a sequence of symbolic
    //    packets, guided by the cache model.
    let config = AnalysisConfig {
        packets: 20,
        step_budget: 60_000,
        ..Default::default()
    };
    let report = Castan::new(config).analyze(&nf, &catalog);
    println!("{}", report.summary());

    // 4. Export the synthesized workload as a PCAP (what the original tool
    //    hands to MoonGen) and measure it on the simulated testbed.
    let pcap_path = std::env::temp_dir().join("castan_quickstart.pcap");
    report.write_pcap(&pcap_path).expect("write pcap");
    println!("adversarial workload written to {}", pcap_path.display());

    let meas_cfg = MeasurementConfig {
        total_packets: 20_000,
        warmup_packets: 2_000,
        ..Default::default()
    };
    let adversarial = castan_workload(report.packets.clone());
    let zipfian = generic_workload(&nf, WorkloadKind::Zipfian, &WorkloadConfig::scaled(0.05));

    let m_adv = measure(&nf, &adversarial, &meas_cfg);
    let m_zipf = measure(&nf, &zipfian, &meas_cfg);

    println!(
        "\n{:<22} {:>14} {:>18} {:>14}",
        "workload", "median ns", "median instr/pkt", "L3 miss/pkt"
    );
    for (name, m) in [
        ("Zipfian (typical)", &m_zipf),
        ("CASTAN (adversarial)", &m_adv),
    ] {
        println!(
            "{:<22} {:>14.0} {:>18.0} {:>14.0}",
            name,
            m.median_latency_ns(),
            m.median_instructions(),
            m.median_l3_misses()
        );
    }
    let slowdown = (m_adv.median_latency_ns() - castan_suite::testbed::WIRE_LATENCY_NS)
        / (m_zipf.median_latency_ns() - castan_suite::testbed::WIRE_LATENCY_NS);
    println!(
        "\nCASTAN's {}-packet workload inflates NF latency by {slowdown:.1}× over typical traffic.",
        adversarial.len()
    );
}

//! # castan-suite
//!
//! Umbrella crate for the CASTAN reproduction workspace. It re-exports the
//! member crates so the runnable examples under `examples/` and the
//! integration tests under `tests/` can use a single dependency, and so
//! `cargo doc` produces one entry point covering the whole system.
//!
//! See the workspace `README.md` for an architecture overview and
//! `DESIGN.md` for the paper-to-crate mapping.

#![forbid(unsafe_code)]

pub use castan_analysis as envelope;
pub use castan_chain as chain;
pub use castan_cluster as cluster;
pub use castan_core as analysis;
pub use castan_ir as ir;
pub use castan_mem as mem;
pub use castan_nf as nf;
pub use castan_packet as packet;
pub use castan_runtime as runtime;
pub use castan_telemetry as telemetry;
pub use castan_testbed as testbed;
pub use castan_workload as workload;
pub use castan_xcore as xcore;

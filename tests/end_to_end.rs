//! Cross-crate integration tests: the full CASTAN pipeline (NF → analysis →
//! synthesized workload → testbed measurement) on scaled-down budgets.

use castan_suite::analysis::{analyze_chain, AnalysisConfig, Castan};
use castan_suite::chain::{chain_by_id, ChainId, NfChain};
use castan_suite::mem::{ContentionCatalog, HierarchyConfig, MemoryHierarchy};
use castan_suite::nf::{all_nfs, nf_by_id, NfId, NfSpec};
use castan_suite::packet::pcap;
use castan_suite::testbed::{
    measure, measure_chain, MeasurementConfig, FORWARDING_OVERHEAD_CYCLES,
    FORWARDING_OVERHEAD_INSTRUCTIONS,
};
use castan_suite::workload::{
    castan_workload, generic_chain_workload, generic_workload, manual_workload, WorkloadConfig,
    WorkloadKind,
};

fn catalog_for(nf: &NfSpec) -> ContentionCatalog {
    let mut hier = MemoryHierarchy::new(HierarchyConfig::xeon_e5_2667v2(), 1);
    let mut lines = Vec::new();
    for region in &nf.data_regions {
        let stride = (region.len / 2048).max(64);
        let mut a = region.base;
        while a < region.end() && lines.len() < 4096 {
            lines.push(a);
            a += stride;
        }
    }
    ContentionCatalog::from_ground_truth(&mut hier, lines)
}

fn quick_analysis(packets: u32, budget: u64) -> AnalysisConfig {
    let mut cfg = AnalysisConfig::quick();
    cfg.packets = packets;
    cfg.step_budget = budget;
    cfg
}

fn quick_measurement() -> MeasurementConfig {
    MeasurementConfig {
        total_packets: 2_500,
        warmup_packets: 250,
        ..Default::default()
    }
}

#[test]
fn every_nf_runs_every_generic_workload_on_the_testbed() {
    let wl_cfg = WorkloadConfig::scaled(0.003);
    let meas = MeasurementConfig {
        total_packets: 600,
        warmup_packets: 60,
        ..Default::default()
    };
    for nf in all_nfs() {
        for kind in [WorkloadKind::OnePacket, WorkloadKind::Zipfian] {
            let wl = generic_workload(&nf, kind, &wl_cfg);
            let m = measure(&nf, &wl, &meas);
            assert!(
                m.median_latency_ns() > 4_000.0,
                "{} under {kind}: implausible latency",
                nf.name()
            );
            assert!(m.median_instructions() >= 271.0, "{}", nf.name());
        }
    }
}

#[test]
fn castan_pipeline_produces_a_measurable_pcap_workload() {
    let nf = nf_by_id(NfId::LpmTrie);
    let report = Castan::new(quick_analysis(6, 25_000)).analyze(&nf, &catalog_for(&nf));
    assert_eq!(report.packets.len(), 6);

    // PCAP round trip, like handing the workload to MoonGen.
    let path = std::env::temp_dir().join("castan_e2e_trie.pcap");
    report.write_pcap(&path).unwrap();
    let replayed = pcap::read_pcap_file(&path).unwrap();
    assert_eq!(replayed.len(), 6);
    std::fs::remove_file(&path).ok();

    // The synthesized workload must not be *cheaper* than the single-packet
    // baseline on the real (simulated) testbed.
    let meas = quick_measurement();
    let adversarial = measure(&nf, &castan_workload(replayed), &meas);
    let baseline = measure(
        &nf,
        &generic_workload(&nf, WorkloadKind::OnePacket, &WorkloadConfig::scaled(0.003)),
        &meas,
    );
    assert!(
        adversarial.median_instructions() >= baseline.median_instructions(),
        "adversarial {} vs baseline {}",
        adversarial.median_instructions(),
        baseline.median_instructions()
    );
}

#[test]
fn castan_matches_manual_on_the_unbalanced_tree_nat() {
    // §5.3: CASTAN's workload should behave like the hand-crafted skew
    // workload (both much worse than Zipfian traffic of the same length).
    let nf = nf_by_id(NfId::NatUnbalancedTree);
    let report = Castan::new(quick_analysis(12, 60_000)).analyze(&nf, &catalog_for(&nf));
    let meas = quick_measurement();

    let manual = manual_workload(&nf).unwrap();
    let m_manual = measure(&nf, &manual, &meas);
    let m_castan = measure(&nf, &castan_workload(report.packets.clone()), &meas);
    let m_zipf = measure(
        &nf,
        &generic_workload(&nf, WorkloadKind::Zipfian, &WorkloadConfig::scaled(0.003)),
        &meas,
    );

    assert!(
        m_manual.median_instructions() > m_zipf.median_instructions(),
        "the skew workload must beat Zipfian"
    );
    // CASTAN should get at least part of the way toward the manual attack
    // (the paper reports near-parity; with the tiny test budget we accept a
    // weaker bound but it must clearly exceed typical traffic).
    assert!(
        m_castan.median_instructions() >= m_zipf.median_instructions(),
        "CASTAN {} must not be better-behaved than Zipfian {}",
        m_castan.median_instructions(),
        m_zipf.median_instructions()
    );
}

#[test]
fn red_black_tree_resists_what_the_unbalanced_tree_does_not() {
    // The comparison behind Figs. 9 vs 11: identical skew traffic, the
    // rebalanced tree keeps per-packet instructions near the Zipfian level.
    let meas = quick_measurement();
    let skew = manual_workload(&nf_by_id(NfId::NatUnbalancedTree)).unwrap();
    let bst = measure(&nf_by_id(NfId::NatUnbalancedTree), &skew, &meas);
    let rbt = measure(&nf_by_id(NfId::NatRedBlackTree), &skew, &meas);
    assert!(
        bst.median_instructions() > 1.3 * rbt.median_instructions(),
        "unbalanced {} vs red-black {}",
        bst.median_instructions(),
        rbt.median_instructions()
    );
}

#[test]
fn chain_pipeline_analysis_synthesis_measurement() {
    // The full chain pipeline on a scaled-down budget: chained analysis →
    // origin-packet synthesis → chained measurement, with the per-stage
    // counters reconciling exactly against the end-to-end numbers.
    let chain = chain_by_id(ChainId::NatLpm);
    let catalogs: Vec<ContentionCatalog> =
        chain.stages.iter().map(|s| catalog_for(&s.nf)).collect();
    let castan = Castan::new(quick_analysis(6, 30_000));
    let report = analyze_chain(&castan, &chain, &catalogs);
    assert_eq!(
        report.packets.len(),
        6,
        "one origin packet per symbolic packet"
    );
    assert_eq!(report.per_stage.len(), 2);
    assert!(report.predicted_total_cpp > 0);

    let meas_cfg = quick_measurement();
    let m = measure_chain(&chain, &castan_workload(report.packets.clone()), &meas_cfg);

    // Per-stage counters sum — minus nothing but the per-packet forwarding
    // overhead, which is charged once for the whole chain — to the
    // end-to-end measurement. The shared-cache interaction lives *inside*
    // the per-stage cycle counts (stages evict each other's L3 lines), so
    // the identity holds exactly.
    for (i, total) in m.end_to_end.iter().enumerate() {
        let stage_instr: u64 = m.per_stage.iter().map(|s| s[i].instructions).sum();
        let stage_cycles: u64 = m.per_stage.iter().map(|s| s[i].cycles).sum();
        assert_eq!(
            total.instructions,
            stage_instr + FORWARDING_OVERHEAD_INSTRUCTIONS
        );
        assert_eq!(total.cycles, stage_cycles + FORWARDING_OVERHEAD_CYCLES);
    }

    // The adversarial chain workload must cost at least as much as the
    // single-packet baseline on the same chain.
    let baseline = measure_chain(
        &chain,
        &generic_chain_workload(
            &chain,
            WorkloadKind::OnePacket,
            &WorkloadConfig::scaled(0.003),
        ),
        &meas_cfg,
    );
    assert!(
        m.median_cycles() >= baseline.median_cycles(),
        "adversarial {} vs baseline {}",
        m.median_cycles(),
        baseline.median_cycles()
    );
}

#[test]
fn chain_cost_is_not_the_sum_of_isolated_stage_costs() {
    // Stages share one L3: measuring each stage alone (own DUT, own cold
    // hierarchy) and adding the numbers is NOT the chain cost. With a
    // destination-diverse trace through nat→lpm the shared-cache chain run
    // differs measurably from the isolated sum.
    let chain = chain_by_id(ChainId::NatLpm);
    let wl = generic_chain_workload(
        &chain,
        WorkloadKind::UniRand,
        &WorkloadConfig::scaled(0.002),
    );
    let cfg = quick_measurement();
    let m_chain = measure_chain(&chain, &wl, &cfg);

    let mut isolated_sum = 0.0;
    for stage in &chain.stages {
        let single = NfChain::new(stage.nf.name(), vec![stage.nf.clone()]);
        isolated_sum += measure_chain(&single, &wl, &cfg).median_cycles();
    }
    // One forwarding overhead is double-counted in the isolated sum.
    isolated_sum -= FORWARDING_OVERHEAD_CYCLES as f64;
    let delta = (m_chain.median_cycles() - isolated_sum).abs() / isolated_sum;
    assert!(
        delta > 0.005,
        "shared-L3 contention should shift chain cost away from the isolated sum \
         (chain {} vs sum {}, delta {:.3}%)",
        m_chain.median_cycles(),
        isolated_sum,
        delta * 100.0
    );
}

#[test]
fn analysis_reports_hash_work_for_hash_based_nfs_only() {
    let hash_nf = nf_by_id(NfId::LbHashTable);
    let tree_nf = nf_by_id(NfId::LbUnbalancedTree);
    let hash_report =
        Castan::new(quick_analysis(4, 20_000)).analyze(&hash_nf, &catalog_for(&hash_nf));
    let tree_report =
        Castan::new(quick_analysis(4, 20_000)).analyze(&tree_nf, &catalog_for(&tree_nf));
    assert!(hash_report.havocs_total >= 1, "LB/hash table must havoc");
    assert_eq!(tree_report.havocs_total, 0, "trees never hash");
}

//! Envelope soundness, pinned by property tests.
//!
//! The static cost envelopes of `castan-analysis` claim to bracket every
//! execution the system can produce. Two independent consumers check that
//! claim here, over randomized inputs:
//!
//! * the **testbed**: concrete measured per-packet counters (cycles,
//!   instructions, memory accesses, L3 misses) of random traffic-profile
//!   workloads must lie inside the envelope, for every NF and every chain;
//! * the **engine**: the symbolic engine's predicted per-packet metrics
//!   must lie inside the envelope for every NF and any solver seed (the
//!   engine also re-checks this itself at every merge barrier and panics on
//!   violation — these tests pin the gate from the outside).

use proptest::prelude::*;

use castan_suite::analysis::engine::AnalysisConfig;
use castan_suite::analysis::Castan;
use castan_suite::chain::all_chains;
use castan_suite::envelope::{analyze_nf, chain_envelope, EnvelopeParams};
use castan_suite::mem::ContentionCatalog;
use castan_suite::nf::all_nfs;
use castan_suite::testbed::{
    measure, measure_chain, MeasurementConfig, FORWARDING_OVERHEAD_CYCLES,
    FORWARDING_OVERHEAD_INSTRUCTIONS, FORWARDING_OVERHEAD_MISSES,
};
use castan_suite::workload::{
    generic_chain_workload, generic_workload, Workload, WorkloadConfig, WorkloadKind,
};

/// Flow budget for an observed workload: the packets replay cyclically, so
/// the distinct flows of the trace bound every table's insertions.
fn flow_budget(wl: &Workload) -> u64 {
    (wl.distinct_flows() as u64).max(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Measured per-packet counters of a random generic workload stay
    /// inside the static envelope, for every NF in the catalog.
    #[test]
    fn measured_nf_counters_stay_inside_the_envelope(
        seed in any::<u64>(),
        zipf in any::<bool>(),
    ) {
        let kind = if zipf { WorkloadKind::Zipfian } else { WorkloadKind::UniRand };
        let wl_cfg = WorkloadConfig { scale: 0.002, seed };
        let cfg = MeasurementConfig {
            total_packets: 400,
            warmup_packets: 40,
            seed,
            ..MeasurementConfig::quick()
        };
        for nf in all_nfs() {
            let wl = generic_workload(&nf, kind, &wl_cfg);
            let env = analyze_nf(&nf, &EnvelopeParams::new(flow_budget(&wl)));
            let m = measure(&nf, &wl, &cfg);
            for (i, c) in m.counters.iter().enumerate() {
                // The DUT charges a fixed NIC/forwarding cost on top of the
                // NF program the envelope brackets; peel it off exactly.
                let verdict = env.check_packet(
                    c.cycles - FORWARDING_OVERHEAD_CYCLES,
                    c.instructions - FORWARDING_OVERHEAD_INSTRUCTIONS,
                    c.loads + c.stores,
                    c.l3_misses - FORWARDING_OVERHEAD_MISSES,
                );
                prop_assert!(
                    verdict.is_ok(),
                    "{} ({} seed {seed}) packet {i}: {}",
                    nf.name(),
                    kind.name(),
                    verdict.unwrap_err()
                );
            }
        }
    }

    /// Measured end-to-end chain counters of a random workload stay inside
    /// the composed chain envelope, for every canonical chain: cycles and
    /// instructions within [stage-0 lower, sum-of-stages upper], memory
    /// accesses and L3 misses below the summed upper bounds.
    #[test]
    fn measured_chain_counters_stay_inside_the_composed_envelope(
        seed in any::<u64>(),
        zipf in any::<bool>(),
    ) {
        let kind = if zipf { WorkloadKind::Zipfian } else { WorkloadKind::UniRand };
        let wl_cfg = WorkloadConfig { scale: 0.002, seed };
        let cfg = MeasurementConfig {
            total_packets: 400,
            warmup_packets: 40,
            seed,
            ..MeasurementConfig::quick()
        };
        for chain in all_chains() {
            let wl = generic_chain_workload(&chain, kind, &wl_cfg);
            let env = chain_envelope(&chain, &EnvelopeParams::new(flow_budget(&wl)));
            let m = measure_chain(&chain, &wl, &cfg);
            for (i, c) in m.end_to_end.iter().enumerate() {
                // The fixed NIC/forwarding cost is charged once per packet
                // for the whole chain; peel it off before checking.
                let cycles = c.cycles - FORWARDING_OVERHEAD_CYCLES;
                let instructions = c.instructions - FORWARDING_OVERHEAD_INSTRUCTIONS;
                let l3_misses = c.l3_misses - FORWARDING_OVERHEAD_MISSES;
                prop_assert!(
                    env.cycles.contains(cycles),
                    "{} packet {i}: {} cycles outside [{}, {}]",
                    chain.name(), cycles, env.cycles.lower, env.cycles.upper
                );
                prop_assert!(
                    env.instructions.contains(instructions),
                    "{} packet {i}: {} instructions outside [{}, {}]",
                    chain.name(), instructions, env.instructions.lower, env.instructions.upper
                );
                prop_assert!(
                    c.loads + c.stores <= env.mem_accesses.upper,
                    "{} packet {i}: {} accesses exceed the bound {}",
                    chain.name(), c.loads + c.stores, env.mem_accesses.upper
                );
                prop_assert!(
                    l3_misses <= env.l3_miss_upper,
                    "{} packet {i}: {} L3 misses exceed the bound {}",
                    chain.name(), l3_misses, env.l3_miss_upper
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// The engine's synthesized predictions stay inside the envelope for
    /// every NF and any solver seed. The engine enforces this itself at
    /// every merge barrier (a violation panics the analysis); checking the
    /// final report from the outside pins the gate end to end.
    #[test]
    fn engine_predictions_stay_inside_the_envelope(seed in any::<u64>()) {
        for nf in all_nfs() {
            let mut cfg = AnalysisConfig::quick();
            cfg.packets = 2;
            cfg.step_budget = 6_000;
            cfg.solver.seed = seed;
            let packets = cfg.packets;
            let report = Castan::new(cfg).analyze(&nf, &ContentionCatalog::default());
            let env = analyze_nf(&nf, &EnvelopeParams::new(u64::from(packets)));
            for (i, m) in report.per_packet.iter().enumerate() {
                let verdict = env.check_packet(
                    m.est_cycles,
                    m.instructions,
                    m.loads + m.stores,
                    m.est_l3_misses,
                );
                prop_assert!(
                    verdict.is_ok(),
                    "{} (seed {seed}) packet {i}: {}",
                    nf.name(),
                    verdict.unwrap_err()
                );
            }
            prop_assert!(
                report.predicted_worst_cpp <= env.cycles.upper,
                "{}: predicted worst {} exceeds the envelope upper {}",
                nf.name(), report.predicted_worst_cpp, env.cycles.upper
            );
        }
    }
}

//! Property-based tests (proptest) on the core data structures and
//! invariants that the rest of the system leans on.

use proptest::prelude::*;

use castan_suite::ir::{BinOp, CmpOp, DataMemory};
use castan_suite::mem::cache::SetAssocCache;
use castan_suite::mem::{line_of, LINE_SIZE};
use castan_suite::packet::ip::internet_checksum;
use castan_suite::packet::{FlowKey, IpProto, Ipv4Addr, Packet, PacketBuilder, PacketField};

proptest! {
    /// Any UDP/TCP packet built from a 5-tuple survives a wire round trip
    /// with all CASTAN-relevant fields intact.
    #[test]
    fn packet_wire_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        tcp in any::<bool>(),
        ttl in 1u8..=255,
    ) {
        let proto = if tcp { IpProto::Tcp } else { IpProto::Udp };
        let p = PacketBuilder::new()
            .src_ip(Ipv4Addr(src))
            .dst_ip(Ipv4Addr(dst))
            .src_port(sport)
            .dst_port(dport)
            .proto(proto)
            .ttl(ttl)
            .build();
        let q = Packet::parse(&p.to_bytes()).unwrap();
        for field in PacketField::ALL {
            prop_assert_eq!(p.field(field), q.field(field), "field {}", field);
        }
    }

    /// The internet checksum written by the IPv4 header serialiser always
    /// verifies, for arbitrary header contents.
    #[test]
    fn ipv4_checksum_always_verifies(
        src in any::<u32>(),
        dst in any::<u32>(),
        ident in any::<u16>(),
        ttl in any::<u8>(),
    ) {
        let h = castan_suite::packet::Ipv4Header {
            dscp_ecn: 0,
            total_len: 60,
            identification: ident,
            flags_frag: 0,
            ttl,
            proto: IpProto::Udp,
            src: Ipv4Addr(src),
            dst: Ipv4Addr(dst),
        };
        let mut buf = [0u8; 20];
        h.write(&mut buf);
        prop_assert_eq!(internet_checksum(&buf), 0);
    }

    /// Flow-key reversal is an involution and never equals the original for
    /// asymmetric endpoints.
    #[test]
    fn flow_key_reversal(src in any::<u32>(), dst in any::<u32>(), sp in any::<u16>(), dp in any::<u16>()) {
        let k = FlowKey::udp(Ipv4Addr(src), sp, Ipv4Addr(dst), dp);
        prop_assert_eq!(k.reversed().reversed(), k);
        if src != dst || sp != dp {
            prop_assert_ne!(k.reversed(), k);
        }
    }

    /// DataMemory behaves like a flat byte array: interleaved writes of
    /// arbitrary widths read back exactly like a shadow model.
    #[test]
    fn data_memory_matches_shadow_model(
        ops in proptest::collection::vec((0u64..4096, any::<u64>(), 1u64..=8), 1..60)
    ) {
        let mut mem = DataMemory::new();
        let mut shadow = vec![0u8; 5000];
        for (addr, value, width) in ops {
            mem.write(addr, value, width);
            for i in 0..width {
                shadow[(addr + i) as usize] = (value >> (8 * i)) as u8;
            }
        }
        for addr in (0..4096).step_by(7) {
            let expect = u64::from_le_bytes([
                shadow[addr], shadow[addr + 1], shadow[addr + 2], shadow[addr + 3],
                shadow[addr + 4], shadow[addr + 5], shadow[addr + 6], shadow[addr + 7],
            ]);
            prop_assert_eq!(mem.read(addr as u64, 8), expect);
        }
    }

    /// The set-associative cache never reports more resident lines than its
    /// capacity, and a line just accessed is always resident.
    #[test]
    fn cache_capacity_and_residency(
        accesses in proptest::collection::vec(0u64..(1 << 20), 1..300)
    ) {
        let mut cache = SetAssocCache::new(16, 4);
        for addr in &accesses {
            cache.access(line_of(*addr));
            prop_assert!(cache.contains(line_of(*addr)));
        }
        let resident = cache.resident_lines();
        prop_assert!(resident.len() <= 16 * 4);
        for line in resident {
            prop_assert_eq!(line % LINE_SIZE, 0);
        }
    }

    /// IR binary/compare operators agree with a reference big-integer model.
    #[test]
    fn binop_semantics_match_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(BinOp::Add.eval(a, b), a.wrapping_add(b));
        prop_assert_eq!(BinOp::Sub.eval(a, b), a.wrapping_sub(b));
        prop_assert_eq!(BinOp::Xor.eval(a, b), a ^ b);
        prop_assert_eq!(BinOp::Shl.eval(a, b), a.wrapping_shl((b & 63) as u32));
        prop_assert_eq!(CmpOp::Ult.eval(a, b), a < b);
        prop_assert_eq!(CmpOp::Eq.eval(a, b), a == b);
        // Negation is a true complement for every operator.
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Ult, CmpOp::Ule, CmpOp::Ugt, CmpOp::Uge] {
            prop_assert_eq!(op.eval(a, b), !op.negated().eval(a, b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A nop→nop chain costs exactly one NOP plus one extra stage: per
    /// measured packet, the chained datapath's counters equal the single-NOP
    /// DUT's counters plus the second NOP stage's single `Return`
    /// instruction (and its base cycles). Nothing else — no hidden per-stage
    /// forwarding overhead, no cache interaction (the NOP touches no data
    /// memory).
    #[test]
    fn nop_nop_chain_is_one_nop_plus_one_stage(
        src in any::<u32>(),
        sport in any::<u16>(),
        extra_packets in 0u16..200,
    ) {
        use castan_suite::chain::NfChain;
        use castan_suite::ir::CostClass;
        use castan_suite::nf::{nf_by_id, NfId};
        use castan_suite::testbed::{measure, MeasurementConfig};
        use castan_suite::workload::{Workload, WorkloadKind};

        let pkt = PacketBuilder::new()
            .src_ip(Ipv4Addr(src))
            .src_port(sport)
            .build();
        let wl = Workload { kind: WorkloadKind::OnePacket, packets: vec![pkt] };
        let cfg = MeasurementConfig {
            total_packets: 300 + usize::from(extra_packets),
            warmup_packets: 30,
            ..MeasurementConfig::quick()
        };
        let chain = NfChain::new("nop-nop", vec![nf_by_id(NfId::Nop), nf_by_id(NfId::Nop)]);
        let m_chain = castan_suite::testbed::measure_chain(&chain, &wl, &cfg);
        let m_single = measure(&nf_by_id(NfId::Nop), &wl, &cfg);

        prop_assert_eq!(m_chain.end_to_end.len(), m_single.counters.len());
        let stage_instructions = 1; // the NOP program is a single `ret`
        let stage_cycles = CostClass::Return.base_cycles();
        for (c, s) in m_chain.end_to_end.iter().zip(&m_single.counters) {
            prop_assert_eq!(c.instructions, s.instructions + stage_instructions);
            prop_assert_eq!(c.cycles, s.cycles + stage_cycles);
            prop_assert_eq!(c.l3_misses, s.l3_misses);
            prop_assert_eq!(c.loads, s.loads);
            prop_assert_eq!(c.stores, s.stores);
        }
    }

    /// Chain workload generation is a pure function of the seed: the same
    /// seed reproduces the trace byte for byte, for every canonical chain.
    #[test]
    fn chain_workloads_are_deterministic_given_a_seed(seed in any::<u64>()) {
        use castan_suite::chain::all_chains;
        use castan_suite::workload::{generic_chain_workload, WorkloadConfig, WorkloadKind};

        let cfg = WorkloadConfig { scale: 0.003, seed };
        for chain in all_chains() {
            for kind in [WorkloadKind::Zipfian, WorkloadKind::UniRand] {
                let a = generic_chain_workload(&chain, kind, &cfg);
                let b = generic_chain_workload(&chain, kind, &cfg);
                prop_assert_eq!(&a.packets, &b.packets, "{} {}", chain.name(), kind);
                prop_assert!(!a.packets.is_empty());
            }
        }
    }
}

proptest! {
    /// RSS dispatch is per-flow: every packet of a flow lands on the same
    /// core, for any core count, and always on a core that exists. With a
    /// single queue, everything lands on core 0.
    #[test]
    fn rss_dispatch_pins_flows_to_one_core(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        n_cores in 1usize..=16,
    ) {
        use castan_suite::runtime::RssDispatcher;

        let flow = FlowKey::udp(Ipv4Addr(src), sport, Ipv4Addr(dst), dport);
        let dispatcher = RssDispatcher::for_queues(n_cores);
        let queue = dispatcher.queue_of_flow(&flow);
        prop_assert!(queue < n_cores);
        if n_cores == 1 {
            prop_assert_eq!(queue, 0);
        }
        // Every packet of the flow — whatever its other fields — follows it.
        for ttl in [1u8, 64, 255] {
            let pkt = PacketBuilder::udp_flow(flow).ttl(ttl).build();
            prop_assert_eq!(dispatcher.queue_of_packet(&pkt), queue);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Dispatching over one core with batches of one is byte-identical to
    /// the unbatched chained DUT — counters, latency samples and drop
    /// counts included — for arbitrary workload seeds.
    #[test]
    fn one_core_dispatch_equals_the_chain_dut(seed in any::<u64>()) {
        use castan_suite::chain::{chain_by_id, ChainId};
        use castan_suite::testbed::{measure_chain, measure_sharded, MeasurementConfig, ShardConfig};
        use castan_suite::workload::{generic_chain_workload, WorkloadConfig, WorkloadKind};

        let chain = chain_by_id(ChainId::NatLpm);
        let wl_cfg = WorkloadConfig { scale: 0.002, seed };
        let wl = generic_chain_workload(&chain, WorkloadKind::Zipfian, &wl_cfg);
        let cfg = MeasurementConfig {
            total_packets: 600,
            warmup_packets: 60,
            seed,
            ..MeasurementConfig::quick()
        };
        let single = measure_chain(&chain, &wl, &cfg);
        let sharded = measure_sharded(&chain, ShardConfig::unbatched(1), &wl, &cfg);
        prop_assert_eq!(&sharded.per_core[0].end_to_end, &single.end_to_end);
        prop_assert_eq!(&sharded.per_core[0].latency_ns, &single.latency_ns);
        prop_assert_eq!(sharded.per_core[0].dropped, single.dropped);
    }

    /// A seeded sharded run is deterministic: repeating the identical run
    /// reproduces every per-core counter and latency sample exactly.
    #[test]
    fn sharded_runs_are_deterministic(seed in any::<u64>(), n_cores in 1usize..=4) {
        use castan_suite::chain::{chain_by_id, ChainId};
        use castan_suite::testbed::{measure_sharded, MeasurementConfig, ShardConfig};
        use castan_suite::workload::{generic_chain_workload, WorkloadConfig, WorkloadKind};

        let chain = chain_by_id(ChainId::Nop3);
        let wl_cfg = WorkloadConfig { scale: 0.002, seed };
        let wl = generic_chain_workload(&chain, WorkloadKind::UniRand, &wl_cfg);
        let cfg = MeasurementConfig {
            total_packets: 600,
            warmup_packets: 60,
            seed,
            ..MeasurementConfig::quick()
        };
        let a = measure_sharded(&chain, ShardConfig::new(n_cores), &wl, &cfg);
        let b = measure_sharded(&chain, ShardConfig::new(n_cores), &wl, &cfg);
        prop_assert_eq!(a.n_cores(), n_cores);
        for core in 0..n_cores {
            prop_assert_eq!(&a.per_core[core].end_to_end, &b.per_core[core].end_to_end);
            prop_assert_eq!(&a.per_core[core].latency_ns, &b.per_core[core].latency_ns);
            prop_assert_eq!(a.per_core[core].mem, b.per_core[core].mem);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `steer_flow` never offers the same candidate twice. A reject-all
    /// filter forces the full enumeration (then one accept-anything pass
    /// confirms the search still succeeds): under a single queue every
    /// candidate reaches the `distinct` filter, so the flat scan must
    /// cover all 65535 non-zero source ports exactly once — the historical
    /// bug clamped a wrapped port 0 onto port 1, re-offering a duplicate
    /// while silently skipping a real port.
    #[test]
    fn steer_flow_offers_no_duplicate_candidates(
        src in any::<u32>(),
        // Port 0 is excluded: the *scan* never generates it, but the
        // original flow is always offered as-is first (real traffic with a
        // zero source port still deserves steering), so starting from 0
        // would legitimately offer one zero-port candidate.
        sport in 1u16..=u16::MAX,
        n_queues in 1usize..=4,
    ) {
        use castan_suite::runtime::RssDispatcher;

        let flow = FlowKey::udp(
            Ipv4Addr(src), sport, Ipv4Addr::new(93, 184, 216, 34), 443,
        );
        let dispatcher = RssDispatcher::for_queues(n_queues);
        let mut offered: Vec<(u32, u16)> = Vec::new();
        let exhausted = dispatcher.steer_flow(&flow, 0, |c| {
            offered.push((c.src_ip.0, c.src_port));
            false
        });
        prop_assert!(exhausted.is_none());
        prop_assert!(offered.iter().all(|&(_, p)| p != 0));
        let mut dedup = offered.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(
            dedup.len(),
            offered.len(),
            "a candidate was offered twice (n_queues {})",
            n_queues
        );
        if n_queues == 1 {
            // Every candidate hits the target, so the flat portion of the
            // enumeration is exactly the non-zero port space.
            let flat: Vec<u16> = offered
                .iter()
                .filter(|&&(ip, _)| ip == flow.src_ip.0)
                .map(|&(_, p)| p)
                .collect();
            let mut sorted = flat.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, (1..=u16::MAX).collect::<Vec<u16>>());
        }
        // And with an accept-all filter the search succeeds immediately.
        prop_assert!(dispatcher.steer_flow(&flow, 0, |_| true).is_some());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Epoch rebalancing preserves flow→core consistency *within* an
    /// epoch: reconstructing the dispatch from the recorded table history
    /// matches the DUT's per-core dispatch counts exactly, and no flow's
    /// packets split across cores inside one epoch (batches are drained at
    /// the boundary before the table swap).
    #[test]
    fn rebalancing_preserves_flow_to_core_consistency_within_an_epoch(seed in any::<u64>()) {
        use std::collections::BTreeMap;
        use castan_suite::chain::{chain_by_id, ChainId};
        use castan_suite::runtime::{RebalancePolicy, RssDispatcher};
        use castan_suite::testbed::{
            measure_sharded, MeasurementConfig, MitigationConfig, ShardConfig,
        };
        use castan_suite::workload::{generic_chain_workload, WorkloadConfig, WorkloadKind};

        const EPOCH: usize = 60;
        let chain = chain_by_id(ChainId::Nop3);
        let wl = generic_chain_workload(
            &chain,
            WorkloadKind::UniRand,
            &WorkloadConfig { scale: 0.0005, seed },
        );
        let cfg = MeasurementConfig {
            total_packets: 480,
            warmup_packets: 48,
            seed,
            ..MeasurementConfig::quick()
        };
        let shard = ShardConfig::new(4).with_mitigation(MitigationConfig::rebalance(
            EPOCH,
            RebalancePolicy::LeastLoaded,
        ));
        let m = measure_sharded(&chain, shard, &wl, &cfg);
        prop_assert_eq!(m.table_history.len(), cfg.total_packets.div_ceil(EPOCH));

        // Reconstruct the dispatch: entry_of_flow is table-independent, the
        // epoch's recorded table maps it to a queue.
        let reference = RssDispatcher::new(shard.rss);
        let mut dispatched = [0usize; 4];
        // (epoch, flow) → the set of queues its packets were sent to.
        let mut queues_per_flow: BTreeMap<(usize, u128), Vec<usize>> = BTreeMap::new();
        for i in 0..cfg.total_packets {
            let pkt = &wl.packets[i % wl.packets.len()];
            let epoch = i / EPOCH;
            let queue = match pkt.flow() {
                None => 0,
                Some(flow) => {
                    let entry = reference.entry_of_flow(&flow);
                    let q = m.table_history[epoch][entry] as usize;
                    queues_per_flow
                        .entry((epoch, flow.to_u128()))
                        .or_default()
                        .push(q);
                    q
                }
            };
            dispatched[queue] += 1;
        }
        for (c, &expected) in dispatched.iter().enumerate() {
            prop_assert_eq!(
                m.per_core[c].dispatched,
                expected,
                "core {}'s dispatch count must match the table-history \
                 reconstruction",
                c
            );
        }
        for ((epoch, flow), queues) in queues_per_flow {
            let first = queues[0];
            prop_assert!(
                queues.iter().all(|&q| q == first),
                "flow {flow:#x} split across cores in epoch {epoch}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The chaining hash-table NF state machine (LB over the hash table)
    /// pins every flow to a stable backend no matter the interleaving.
    #[test]
    fn lb_assigns_flows_consistently(flow_ids in proptest::collection::vec(0u64..40, 10..60)) {
        use castan_suite::ir::{Interpreter, NullSink};
        use castan_suite::nf::{layout, nf_by_id, NfId};

        let nf = nf_by_id(NfId::LbHashTable);
        let interp = Interpreter::new(&nf.program, &nf.natives);
        let mut mem = nf.initial_memory.clone();
        let mut assigned: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for id in flow_ids {
            let pkt = PacketBuilder::new()
                .src_ip(Ipv4Addr(0x0a00_0000 + id as u32))
                .src_port(1000 + id as u16)
                .dst_ip(Ipv4Addr(layout::LB_VIP))
                .build();
            let backend = interp
                .run_packet(&mut mem, &pkt, &mut NullSink)
                .unwrap()
                .return_value
                .unwrap();
            prop_assert!((1..=layout::LB_NUM_BACKENDS).contains(&backend));
            let prev = assigned.insert(id, backend);
            if let Some(prev) = prev {
                prop_assert_eq!(prev, backend, "flow {} moved backends", id);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// Cross-core §3.2 discovery (castan-xcore), probed from a random core
    /// of a random boot: recovers at least 90% of every oracle bucket's
    /// member lines per slice, is deterministic under a fixed shuffle
    /// seed, and agrees with every other prober core.
    #[test]
    fn cross_core_discovery_recovers_ground_truth_from_any_core(
        boot in 1u64..1_000,
        prober in 0usize..4,
    ) {
        use castan_suite::mem::contention::DiscoveryConfig;
        use castan_suite::mem::{HierarchyConfig, MultiCoreHierarchy};
        use castan_suite::xcore::{discover_catalog_from, ground_truth_catalog_on};

        let cfg = HierarchyConfig::tiny_for_tests();
        // One candidate per page across two cores' address windows: the
        // set-index bits agree, so the only unknown is the hidden slice.
        let page = 1u64 << cfg.page_bits;
        let mut candidates: Vec<u64> = (0..20u64).map(|i| 0x10_0000 + i * page).collect();
        candidates.extend((0..20u64).map(|i| 0x4000_0000 + i * page));

        let mut h = MultiCoreHierarchy::new(cfg, boot, 4);
        let truth = ground_truth_catalog_on(&mut h, candidates.iter().copied());
        let dcfg = DiscoveryConfig::default();
        let discovered = discover_catalog_from(&mut h, prober, &candidates, &dcfg);
        prop_assert!(!discovered.is_empty());

        // >= 90% of every discoverable oracle bucket, grouped correctly.
        for (i, truth_set) in truth.sets().iter().enumerate() {
            if truth_set.len() <= h.l3_associativity() as usize {
                continue; // cannot cross the probing threshold
            }
            let recovered = truth_set
                .lines
                .iter()
                .filter(|&&l| {
                    discovered
                        .set_of(l)
                        .is_some_and(|d| discovered.members(d).len() > 1)
                })
                .count();
            prop_assert!(
                recovered * 10 >= truth_set.len() * 9,
                "boot {}, bucket {}: recovered {}/{}",
                boot, i, recovered, truth_set.len()
            );
        }
        for set in discovered.sets() {
            let bucket = truth.set_of(set.lines[0]);
            prop_assert!(bucket.is_some());
            for &l in &set.lines {
                prop_assert_eq!(truth.set_of(l), bucket, "line {:#x} misgrouped", l);
            }
        }

        // Deterministic under the same seed, and prober-independent. The
        // replica must replay the oracle queries first: frame assignment
        // is first-touch ordered, so a hierarchy whose pages were first
        // mapped in probe order would genuinely hold different slices
        // (the audit finding premapping exists to fix).
        let mut replica = MultiCoreHierarchy::new(cfg, boot, 4);
        let _ = ground_truth_catalog_on(&mut replica, candidates.iter().copied());
        let again = discover_catalog_from(&mut replica, prober, &candidates, &dcfg);
        prop_assert_eq!(discovered.sets(), again.sets());
        let other_core = (prober + 1) % 4;
        let other = discover_catalog_from(&mut h, other_core, &candidates, &dcfg);
        prop_assert_eq!(discovered.sets(), other.sets(), "prober cores disagree");
    }

    /// A 1-core hierarchy makes cross-core discovery a strict special case
    /// of the single-core `castan-mem::contention` path: identical output,
    /// byte for byte, for any boot seed.
    #[test]
    fn one_core_xcore_discovery_matches_the_single_core_path(boot in 1u64..1_000) {
        use castan_suite::mem::contention::{discover_catalog, DiscoveryConfig};
        use castan_suite::mem::{HierarchyConfig, MemoryHierarchy, MultiCoreHierarchy, LINE_SIZE};
        use castan_suite::xcore::discover_catalog_from;

        let cfg = HierarchyConfig::tiny_for_tests();
        let span = cfg.l3_slice_geometry().sets() * LINE_SIZE;
        let candidates: Vec<u64> = (0..40u64).map(|i| 0x20_0000 + i * span).collect();
        let dcfg = DiscoveryConfig::default();
        let single = discover_catalog(&mut MemoryHierarchy::new(cfg, boot), &candidates, &dcfg);
        let multi = discover_catalog_from(
            &mut MultiCoreHierarchy::new(cfg, boot, 1), 0, &candidates, &dcfg,
        );
        prop_assert_eq!(single.sets(), multi.sets());
        prop_assert_eq!(single.associativity(), multi.associativity());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Every search strategy, at every thread count, synthesizes a workload
    /// at least as expensive as the sequential priority-search baseline.
    /// The exploration budget is generous enough that the frontier drains
    /// completely, so every discipline visits the same completed states and
    /// the engine's max-cost selection makes the final costs coincide — and
    /// the thread count can never change them at all.
    #[test]
    fn strategies_and_threads_never_lose_to_the_priority_baseline(seed in 0u64..64) {
        use castan_suite::analysis::engine::AnalysisConfig;
        use castan_suite::analysis::{Castan, SearchStrategyKind};
        use castan_suite::mem::ContentionCatalog;

        let nf = castan_suite::nf::nf_by_id(castan_suite::nf::NfId::LpmDirect1);
        let catalog = ContentionCatalog::default();
        let mut base = AnalysisConfig::quick();
        base.packets = 2;
        base.step_budget = 40_000;
        base.state_cap = 4_096;
        base.solver.seed = seed;
        let baseline = Castan::new(base.clone()).analyze(&nf, &catalog).predicted_worst_cpp;
        for strategy in SearchStrategyKind::ALL {
            for threads in [1usize, 2, 4] {
                let mut cfg = base.clone();
                cfg.strategy = strategy;
                cfg.threads = threads;
                let got = Castan::new(cfg).analyze(&nf, &catalog).predicted_worst_cpp;
                prop_assert!(
                    got >= baseline,
                    "{} at {} threads synthesized {} < baseline {}",
                    strategy.name(), threads, got, baseline
                );
            }
        }
    }

    /// For a fixed seed the analysis report is identical — packet bytes,
    /// metrics, and exploration counters — no matter how many worker
    /// threads execute the rounds.
    #[test]
    fn reports_are_byte_identical_across_thread_counts(seed in 0u64..1_000) {
        use castan_suite::analysis::engine::AnalysisConfig;
        use castan_suite::analysis::Castan;
        use castan_suite::mem::ContentionCatalog;

        let nf = castan_suite::nf::nf_by_id(castan_suite::nf::NfId::NatHashTable);
        let catalog = ContentionCatalog::default();
        let fingerprint = |threads: usize| {
            let mut cfg = AnalysisConfig::quick();
            cfg.packets = 2;
            cfg.step_budget = 10_000;
            cfg.solver.seed = seed;
            cfg.threads = threads;
            let r = Castan::new(cfg).analyze(&nf, &catalog);
            let wire: Vec<Vec<u8>> = r.packets.iter().map(|p| p.to_bytes()).collect();
            format!(
                "{wire:?} {:?} {} {} {} {} {} {}",
                r.per_packet, r.states_explored, r.steps, r.forks,
                r.havocs_total, r.havocs_reconciled, r.predicted_worst_cpp
            )
        };
        let one = fingerprint(1);
        prop_assert_eq!(&fingerprint(2), &one, "2 threads diverged");
        prop_assert_eq!(&fingerprint(4), &one, "4 threads diverged");
    }
}

proptest! {
    /// Forking an execution state is copy-on-write but semantically a deep
    /// copy: stores and assumptions in one fork never leak into its sibling
    /// or its parent.
    #[test]
    fn cow_fork_mutations_never_leak_into_siblings(
        addr in 0u64..4096,
        before in any::<u64>(),
        delta in any::<u64>(),
        width_idx in 0u64..4,
    ) {
        use castan_suite::analysis::cache::NoCacheModel;
        use castan_suite::analysis::state::ExecState;
        use castan_suite::analysis::symmem::SymMemory;
        use castan_suite::analysis::SymExpr;
        use castan_suite::ir::{FunctionBuilder, ProgramBuilder};
        use std::sync::Arc;

        let after = before ^ (delta | 1);
        let width = [1u64, 2, 4, 8][width_idx as usize];
        let mut f = FunctionBuilder::new("main", 0);
        f.ret_void();
        let mut pb = ProgramBuilder::new();
        let main = pb.add(f);
        let program = pb.finish(main);
        let mut parent = ExecState::initial(
            &program,
            SymMemory::new(Arc::new(DataMemory::new())),
            Box::new(NoCacheModel::default()),
            1,
        );
        parent.memory.store(addr, width, SymExpr::constant(before));

        let mut fork_a = parent.clone();
        let mut fork_b = parent.clone();
        fork_a.memory.store(addr, width, SymExpr::constant(after));
        fork_a.assume(castan_suite::analysis::expr::Constraint::require_true(
            SymExpr::cmp(CmpOp::Eq, SymExpr::constant(1), SymExpr::constant(1)),
        ));

        let mask = if width >= 8 { u64::MAX } else { (1u64 << (width * 8)) - 1 };
        prop_assert_eq!(fork_a.memory.load_concrete(addr, width), after & mask);
        prop_assert_eq!(fork_b.memory.load_concrete(addr, width), before & mask, "sibling saw the store");
        prop_assert_eq!(parent.memory.load_concrete(addr, width), before & mask, "parent saw the store");
        prop_assert_eq!(fork_a.constraints.len(), 1);
        prop_assert_eq!(fork_b.constraints.len(), 0, "sibling saw the assumption");
        prop_assert_eq!(parent.constraints.len(), 0, "parent saw the assumption");
    }
}

//! Property-based tests (proptest) on the core data structures and
//! invariants that the rest of the system leans on.

use proptest::prelude::*;

use castan_suite::ir::{BinOp, CmpOp, DataMemory};
use castan_suite::mem::cache::SetAssocCache;
use castan_suite::mem::{line_of, LINE_SIZE};
use castan_suite::packet::ip::internet_checksum;
use castan_suite::packet::{FlowKey, IpProto, Ipv4Addr, Packet, PacketBuilder, PacketField};

proptest! {
    /// Any UDP/TCP packet built from a 5-tuple survives a wire round trip
    /// with all CASTAN-relevant fields intact.
    #[test]
    fn packet_wire_roundtrip(
        src in any::<u32>(),
        dst in any::<u32>(),
        sport in any::<u16>(),
        dport in any::<u16>(),
        tcp in any::<bool>(),
        ttl in 1u8..=255,
    ) {
        let proto = if tcp { IpProto::Tcp } else { IpProto::Udp };
        let p = PacketBuilder::new()
            .src_ip(Ipv4Addr(src))
            .dst_ip(Ipv4Addr(dst))
            .src_port(sport)
            .dst_port(dport)
            .proto(proto)
            .ttl(ttl)
            .build();
        let q = Packet::parse(&p.to_bytes()).unwrap();
        for field in PacketField::ALL {
            prop_assert_eq!(p.field(field), q.field(field), "field {}", field);
        }
    }

    /// The internet checksum written by the IPv4 header serialiser always
    /// verifies, for arbitrary header contents.
    #[test]
    fn ipv4_checksum_always_verifies(
        src in any::<u32>(),
        dst in any::<u32>(),
        ident in any::<u16>(),
        ttl in any::<u8>(),
    ) {
        let h = castan_suite::packet::Ipv4Header {
            dscp_ecn: 0,
            total_len: 60,
            identification: ident,
            flags_frag: 0,
            ttl,
            proto: IpProto::Udp,
            src: Ipv4Addr(src),
            dst: Ipv4Addr(dst),
        };
        let mut buf = [0u8; 20];
        h.write(&mut buf);
        prop_assert_eq!(internet_checksum(&buf), 0);
    }

    /// Flow-key reversal is an involution and never equals the original for
    /// asymmetric endpoints.
    #[test]
    fn flow_key_reversal(src in any::<u32>(), dst in any::<u32>(), sp in any::<u16>(), dp in any::<u16>()) {
        let k = FlowKey::udp(Ipv4Addr(src), sp, Ipv4Addr(dst), dp);
        prop_assert_eq!(k.reversed().reversed(), k);
        if src != dst || sp != dp {
            prop_assert_ne!(k.reversed(), k);
        }
    }

    /// DataMemory behaves like a flat byte array: interleaved writes of
    /// arbitrary widths read back exactly like a shadow model.
    #[test]
    fn data_memory_matches_shadow_model(
        ops in proptest::collection::vec((0u64..4096, any::<u64>(), 1u64..=8), 1..60)
    ) {
        let mut mem = DataMemory::new();
        let mut shadow = vec![0u8; 5000];
        for (addr, value, width) in ops {
            mem.write(addr, value, width);
            for i in 0..width {
                shadow[(addr + i) as usize] = (value >> (8 * i)) as u8;
            }
        }
        for addr in (0..4096).step_by(7) {
            let expect = u64::from_le_bytes([
                shadow[addr], shadow[addr + 1], shadow[addr + 2], shadow[addr + 3],
                shadow[addr + 4], shadow[addr + 5], shadow[addr + 6], shadow[addr + 7],
            ]);
            prop_assert_eq!(mem.read(addr as u64, 8), expect);
        }
    }

    /// The set-associative cache never reports more resident lines than its
    /// capacity, and a line just accessed is always resident.
    #[test]
    fn cache_capacity_and_residency(
        accesses in proptest::collection::vec(0u64..(1 << 20), 1..300)
    ) {
        let mut cache = SetAssocCache::new(16, 4);
        for addr in &accesses {
            cache.access(line_of(*addr));
            prop_assert!(cache.contains(line_of(*addr)));
        }
        let resident = cache.resident_lines();
        prop_assert!(resident.len() <= 16 * 4);
        for line in resident {
            prop_assert_eq!(line % LINE_SIZE, 0);
        }
    }

    /// IR binary/compare operators agree with a reference big-integer model.
    #[test]
    fn binop_semantics_match_reference(a in any::<u64>(), b in any::<u64>()) {
        prop_assert_eq!(BinOp::Add.eval(a, b), a.wrapping_add(b));
        prop_assert_eq!(BinOp::Sub.eval(a, b), a.wrapping_sub(b));
        prop_assert_eq!(BinOp::Xor.eval(a, b), a ^ b);
        prop_assert_eq!(BinOp::Shl.eval(a, b), a.wrapping_shl((b & 63) as u32));
        prop_assert_eq!(CmpOp::Ult.eval(a, b), a < b);
        prop_assert_eq!(CmpOp::Eq.eval(a, b), a == b);
        // Negation is a true complement for every operator.
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Ult, CmpOp::Ule, CmpOp::Ugt, CmpOp::Uge] {
            prop_assert_eq!(op.eval(a, b), !op.negated().eval(a, b));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The chaining hash-table NF state machine (LB over the hash table)
    /// pins every flow to a stable backend no matter the interleaving.
    #[test]
    fn lb_assigns_flows_consistently(flow_ids in proptest::collection::vec(0u64..40, 10..60)) {
        use castan_suite::ir::{Interpreter, NullSink};
        use castan_suite::nf::{layout, nf_by_id, NfId};

        let nf = nf_by_id(NfId::LbHashTable);
        let interp = Interpreter::new(&nf.program, &nf.natives);
        let mut mem = nf.initial_memory.clone();
        let mut assigned: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for id in flow_ids {
            let pkt = PacketBuilder::new()
                .src_ip(Ipv4Addr(0x0a00_0000 + id as u32))
                .src_port(1000 + id as u16)
                .dst_ip(Ipv4Addr(layout::LB_VIP))
                .build();
            let backend = interp
                .run_packet(&mut mem, &pkt, &mut NullSink)
                .unwrap()
                .return_value
                .unwrap();
            prop_assert!((1..=layout::LB_NUM_BACKENDS).contains(&backend));
            let prev = assigned.insert(id, backend);
            if let Some(prev) = prev {
                prop_assert_eq!(prev, backend, "flow {} moved backends", id);
            }
        }
    }
}

//! Property-based pins for the search-trace layer: tracing is purely
//! observational (a traced run's report is byte-identical to the untraced
//! one for every strategy and thread count), and the deterministic
//! counters that land in `TRACE_search.json` are thread-count-invariant.

use proptest::prelude::*;

use castan_suite::analysis::engine::AnalysisConfig;
use castan_suite::analysis::{analyze_chain, analyze_chain_traced, Castan, SearchStrategyKind};
use castan_suite::mem::ContentionCatalog;

/// A compact fingerprint of everything an [`AnalysisReport`] carries —
/// packet bytes included — so "byte-identical" is checked, not sampled.
fn fingerprint(r: &castan_suite::analysis::AnalysisReport) -> String {
    let wire: Vec<Vec<u8>> = r.packets.iter().map(|p| p.to_bytes()).collect();
    format!(
        "{wire:?} {:?} {} {} {} {} {} {}",
        r.per_packet,
        r.states_explored,
        r.steps,
        r.forks,
        r.havocs_total,
        r.havocs_reconciled,
        r.predicted_worst_cpp
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// For every strategy × thread count, attaching a trace changes
    /// nothing about the analysis: the traced report fingerprints exactly
    /// like the untraced one. And the trace's deterministic counters — the
    /// ones `TRACE_search.json` commits — are identical at 1, 2 and 4
    /// threads (only the advisory wall-clock fields may differ, and those
    /// never enter `deterministic_json`).
    #[test]
    fn tracing_is_observational_for_every_strategy_and_thread_count(seed in 0u64..64) {
        let nf = castan_suite::nf::nf_by_id(castan_suite::nf::NfId::NatHashTable);
        let catalog = ContentionCatalog::default();
        for strategy in SearchStrategyKind::ALL {
            let mut deterministic: Option<String> = None;
            for threads in [1usize, 2, 4] {
                let mut cfg = AnalysisConfig::quick();
                cfg.packets = 2;
                cfg.step_budget = 10_000;
                cfg.solver.seed = seed;
                cfg.strategy = strategy;
                cfg.threads = threads;
                let castan = Castan::new(cfg);
                let plain = castan.analyze(&nf, &catalog);
                let (traced, trace) = castan.analyze_traced(&nf, &catalog);
                prop_assert_eq!(
                    fingerprint(&traced),
                    fingerprint(&plain),
                    "{} at {} threads: tracing steered the search",
                    strategy.name(),
                    threads
                );
                let counters = trace.deterministic_json().render();
                match &deterministic {
                    None => deterministic = Some(counters),
                    Some(first) => prop_assert_eq!(
                        &counters,
                        first,
                        "{} at {} threads: deterministic counters depend on \
                         the thread count",
                        strategy.name(),
                        threads
                    ),
                }
            }
        }
    }

    /// The same invariant end to end through the chain pipeline (per-stage
    /// analysis, merge, synthesis): the traced chain report matches the
    /// untraced one for every strategy.
    #[test]
    fn chain_tracing_is_observational_for_every_strategy(seed in 0u64..64) {
        let chain = castan_suite::chain::chain_by_id(castan_suite::chain::ChainId::NatLpm);
        let catalogs: Vec<ContentionCatalog> =
            chain.stages.iter().map(|_| ContentionCatalog::default()).collect();
        for strategy in SearchStrategyKind::ALL {
            let mut cfg = AnalysisConfig::quick();
            cfg.packets = 2;
            cfg.step_budget = 6_000;
            cfg.solver.seed = seed;
            cfg.strategy = strategy;
            let castan = Castan::new(cfg);
            let plain = analyze_chain(&castan, &chain, &catalogs);
            let (traced, trace) = analyze_chain_traced(&castan, &chain, &catalogs);
            prop_assert_eq!(
                traced.predicted_total_cpp,
                plain.predicted_total_cpp,
                "{}: chain tracing steered the search",
                strategy.name()
            );
            prop_assert_eq!(traced.packets.len(), plain.packets.len());
            for (t, p) in traced.packets.iter().zip(&plain.packets) {
                prop_assert_eq!(t.to_bytes(), p.to_bytes());
            }
            prop_assert_eq!(traced.per_stage.len(), plain.per_stage.len());
            for (t, p) in traced.per_stage.iter().zip(&plain.per_stage) {
                prop_assert_eq!(fingerprint(t), fingerprint(p), "{}", strategy.name());
            }
            prop_assert_eq!(traced.merged_constraints, plain.merged_constraints);
            prop_assert_eq!(traced.dropped_constraints, plain.dropped_constraints);
            prop_assert!(trace.states_explored > 0);
        }
    }
}
